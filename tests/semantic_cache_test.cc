#include "cache/semantic_cache.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/disk_region.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/region.h"

// Unit tests of the semantic answer cache in isolation: hit/miss
// geometry, exact-parameter matching, LRU and byte-budget eviction,
// epoch invalidation, counters, and the mutex-wrapped shared variant.
// The serving-path integration (Server / BatchServer) is covered by
// cache_differential_test.cc and batch_server_test.cc.

namespace lbsq::cache {
namespace {

const geo::Rect kUnit(0.0, 0.0, 1.0, 1.0);

std::vector<uint8_t> MakeBytes(size_t n, uint8_t fill) {
  return std::vector<uint8_t>(n, fill);
}

// A window entry whose validity region is a plain rectangle (no holes).
void InsertWindowRect(SemanticCache* cache, double hx, double hy,
                      const geo::Rect& rect, std::vector<uint8_t> bytes) {
  cache->InsertWindow(hx, hy, geo::RectMinusBoxes(rect, {}),
                      std::move(bytes));
}

TEST(SemanticCacheTest, WindowHitMissAndParameterMatch) {
  SemanticCache cache(kUnit, CacheConfig{});
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.2, 0.2, 0.4, 0.4),
                   MakeBytes(16, 7));

  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.LookupWindow({0.3, 0.3}, 0.1, 0.1, &out));
  EXPECT_EQ(out, MakeBytes(16, 7));

  // Outside the region: miss.
  EXPECT_FALSE(cache.LookupWindow({0.5, 0.5}, 0.1, 0.1, &out));
  // Same position, different window extents: miss (exact parameter key).
  EXPECT_FALSE(cache.LookupWindow({0.3, 0.3}, 0.2, 0.1, &out));
  // Different query kind entirely: miss.
  EXPECT_FALSE(cache.LookupNn({0.3, 0.3}, 1, &out));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.lookups, 4u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hit_bytes, 16u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SemanticCacheTest, NnBisectorSemanticsAreClosed) {
  SemanticCache cache(kUnit, CacheConfig{});
  // Valid while the answer (0.25, 0.5) stays at least as close as the
  // rival (0.75, 0.5): the half-plane x <= 0.5.
  std::vector<BisectorConstraint> constraints{
      {{0.25, 0.5}, {0.75, 0.5}}};
  cache.InsertNn(1, kUnit, kUnit, constraints, MakeBytes(8, 1));

  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.LookupNn({0.1, 0.5}, 1, &out));
  EXPECT_FALSE(cache.LookupNn({0.9, 0.5}, 1, &out));
  // Exactly on the bisector: still valid — the cache must mirror the
  // closed (>) comparison of NnValidityResult::IsValidAt, or it would
  // serve/withhold answers inconsistently with the client's own check.
  EXPECT_TRUE(cache.LookupNn({0.5, 0.5}, 1, &out));
  // Same position, different k: miss.
  EXPECT_FALSE(cache.LookupNn({0.1, 0.5}, 2, &out));
}

TEST(SemanticCacheTest, WindowHolesMirrorClosedContainment) {
  SemanticCache cache(kUnit, CacheConfig{});
  const geo::Rect base(0.0, 0.0, 0.8, 0.8);
  const geo::Rect hole(0.3, 0.3, 0.5, 0.5);
  cache.InsertWindow(0.1, 0.1, geo::RectMinusBoxes(base, {hole}),
                     MakeBytes(4, 2));

  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.LookupWindow({0.1, 0.1}, 0.1, 0.1, &out));
  // Inside the hole's interior: invalid.
  EXPECT_FALSE(cache.LookupWindow({0.4, 0.4}, 0.1, 0.1, &out));
  // Exactly on the hole boundary: valid (open hole interiors).
  EXPECT_TRUE(cache.LookupWindow({0.3, 0.4}, 0.1, 0.1, &out));
}

TEST(SemanticCacheTest, RangeDiskRegion) {
  SemanticCache cache(kUnit, CacheConfig{});
  const geo::Rect bounds(0.3, 0.3, 0.7, 0.7);
  geo::DiskRegion region(bounds, {{{0.5, 0.5}, 0.2}}, {});
  cache.InsertRange(0.25, region, MakeBytes(4, 3));

  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.LookupRange({0.5, 0.5}, 0.25, &out));
  EXPECT_FALSE(cache.LookupRange({0.69, 0.69}, 0.25, &out));  // outside disk
  EXPECT_FALSE(cache.LookupRange({0.5, 0.5}, 0.1, &out));     // wrong radius
}

TEST(SemanticCacheTest, LruEvictsLeastRecentlyUsed) {
  CacheConfig config;
  config.max_entries = 2;
  SemanticCache cache(kUnit, config);
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.0, 0.0, 0.2, 0.2),
                   MakeBytes(4, 1));  // A
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.4, 0.4, 0.6, 0.6),
                   MakeBytes(4, 2));  // B

  // Touch A so B becomes the LRU victim.
  std::vector<uint8_t> out;
  ASSERT_TRUE(cache.LookupWindow({0.1, 0.1}, 0.1, 0.1, &out));

  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.8, 0.8, 1.0, 1.0),
                   MakeBytes(4, 3));  // C evicts B
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.LookupWindow({0.1, 0.1}, 0.1, 0.1, &out));   // A alive
  EXPECT_FALSE(cache.LookupWindow({0.5, 0.5}, 0.1, 0.1, &out));  // B gone
  EXPECT_TRUE(cache.LookupWindow({0.9, 0.9}, 0.1, 0.1, &out));   // C alive
}

TEST(SemanticCacheTest, ByteBudgetBoundsOccupancy) {
  CacheConfig config;
  config.max_bytes = 2048;
  SemanticCache cache(kUnit, config);
  for (int i = 0; i < 8; ++i) {
    const double lo = 0.1 * i;
    InsertWindowRect(&cache, 0.05, 0.05,
                     geo::Rect(lo, lo, lo + 0.05, lo + 0.05),
                     MakeBytes(512, static_cast<uint8_t>(i)));
  }
  EXPECT_LE(cache.bytes(), config.max_bytes);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_GT(cache.entries(), 0u);
}

TEST(SemanticCacheTest, OversizeAndEmptyBoundsRejected) {
  CacheConfig config;
  config.max_bytes = 1024;
  SemanticCache cache(kUnit, config);
  // Could never fit: rejected, nothing evicted.
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.2, 0.2, 0.4, 0.4),
                   MakeBytes(4096, 1));
  // Empty validity region: rejected.
  cache.InsertWindow(0.1, 0.1, geo::RectMinusBoxes(), MakeBytes(4, 2));
  // Region entirely outside the universe: rejected.
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(2.0, 2.0, 3.0, 3.0),
                   MakeBytes(4, 3));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().rejected, 3u);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(SemanticCacheTest, InvalidateDropsStaleEntriesLazily) {
  SemanticCache cache(kUnit, CacheConfig{});
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.2, 0.2, 0.4, 0.4),
                   MakeBytes(4, 1));
  cache.Invalidate();

  std::vector<uint8_t> out;
  EXPECT_FALSE(cache.LookupWindow({0.3, 0.3}, 0.1, 0.1, &out));
  EXPECT_EQ(cache.entries(), 0u);  // dropped by the lookup itself
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.stale_drops, 1u);

  // Entries inserted after the bump are live again.
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.2, 0.2, 0.4, 0.4),
                   MakeBytes(4, 2));
  EXPECT_TRUE(cache.LookupWindow({0.3, 0.3}, 0.1, 0.1, &out));
  EXPECT_EQ(out, MakeBytes(4, 2));
}

TEST(SemanticCacheTest, ScrubPurgesEagerly) {
  SemanticCache cache(kUnit, CacheConfig{});
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.0, 0.0, 0.2, 0.2),
                   MakeBytes(4, 1));
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.6, 0.6, 0.8, 0.8),
                   MakeBytes(4, 2));
  cache.Invalidate();
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.4, 0.4, 0.5, 0.5),
                   MakeBytes(4, 3));

  EXPECT_EQ(cache.Scrub(), 2u);  // only the pre-bump entries
  EXPECT_EQ(cache.entries(), 1u);
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.LookupWindow({0.45, 0.45}, 0.1, 0.1, &out));
}

TEST(SemanticCacheTest, ClearDropsEverything) {
  SemanticCache cache(kUnit, CacheConfig{});
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.2, 0.2, 0.4, 0.4),
                   MakeBytes(4, 1));
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  std::vector<uint8_t> out;
  EXPECT_FALSE(cache.LookupWindow({0.3, 0.3}, 0.1, 0.1, &out));
}

TEST(SemanticCacheTest, MostRecentInsertWinsWithinCell) {
  SemanticCache cache(kUnit, CacheConfig{});
  // Two live entries with identical parameters covering the same point:
  // the lookup may serve either (both are valid answers); it must serve
  // exactly one and count one hit.
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.2, 0.2, 0.4, 0.4),
                   MakeBytes(4, 1));
  InsertWindowRect(&cache, 0.1, 0.1, geo::Rect(0.25, 0.25, 0.45, 0.45),
                   MakeBytes(4, 2));
  std::vector<uint8_t> out;
  ASSERT_TRUE(cache.LookupWindow({0.3, 0.3}, 0.1, 0.1, &out));
  EXPECT_TRUE(out == MakeBytes(4, 1) || out == MakeBytes(4, 2));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SemanticCacheTest, SharedWrapperIsUsableConcurrently) {
  SharedSemanticCache cache(kUnit, CacheConfig{});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::vector<uint8_t> out;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const double lo = 0.1 * (i % 8);
        cache.InsertWindow(
            0.05, 0.05,
            geo::RectMinusBoxes(geo::Rect(lo, lo, lo + 0.05, lo + 0.05), {}),
            MakeBytes(8, static_cast<uint8_t>(t)));
        cache.LookupWindow({lo + 0.02, lo + 0.02}, 0.05, 0.05, &out);
        if (i % 50 == 0) cache.Invalidate();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

}  // namespace
}  // namespace lbsq::cache
