#include <gtest/gtest.h>

#include "rtree/tree_stats.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace lbsq::rtree {
namespace {

using test::SmallNodeOptions;
using test::TreeFixture;
using workload::MakeUnitUniform;

TEST(TreeStatsTest, CountsMatchTreeBookkeeping) {
  const auto dataset = MakeUnitUniform(5000, 1101);
  TreeFixture fx(dataset.entries, 64, SmallNodeOptions());
  const TreeStats stats = CollectTreeStats(*fx.tree);
  EXPECT_EQ(stats.total_nodes, fx.tree->num_nodes());
  EXPECT_EQ(stats.total_points, fx.tree->size());
  EXPECT_EQ(stats.levels.size(), static_cast<size_t>(fx.tree->height()));
  // Level structure: one root at the top, counts growing downward.
  EXPECT_EQ(stats.levels.back().node_count, 1u);
  for (size_t i = 0; i + 1 < stats.levels.size(); ++i) {
    EXPECT_GE(stats.levels[i].node_count, stats.levels[i + 1].node_count);
  }
}

TEST(TreeStatsTest, BulkLoadedOccupancyNearFillFactor) {
  const auto dataset = MakeUnitUniform(50000, 1103);
  TreeFixture fx(dataset.entries, 0);  // default options, STR fill 0.7
  const TreeStats stats = CollectTreeStats(*fx.tree);
  EXPECT_NEAR(stats.levels[0].avg_occupancy, 0.7, 0.05);
}

TEST(TreeStatsTest, RStarTreeHasModestLeafOverlap) {
  // After R* insertion, sibling leaf overlap should be a small fraction
  // of the total leaf area for uniform points.
  const auto dataset = MakeUnitUniform(3000, 1105);
  storage::PageManager disk;
  RTree tree(&disk, 64, SmallNodeOptions());
  for (const DataEntry& e : dataset.entries) tree.Insert(e.point, e.id);
  const TreeStats stats = CollectTreeStats(tree);
  const LevelSummary& leaves = stats.levels[0];
  ASSERT_GT(leaves.total_area, 0.0);
  EXPECT_LT(leaves.overlap_area, 0.35 * leaves.total_area);
}

TEST(TreeStatsTest, ToStringMentionsEveryLevel) {
  const auto dataset = MakeUnitUniform(2000, 1107);
  TreeFixture fx(dataset.entries, 32, SmallNodeOptions());
  const std::string rendered = CollectTreeStats(*fx.tree).ToString();
  EXPECT_NE(rendered.find("level"), std::string::npos);
  EXPECT_NE(rendered.find("total:"), std::string::npos);
}

}  // namespace
}  // namespace lbsq::rtree
