#include <cmath>

#include <gtest/gtest.h>

#include "analysis/minskew.h"
#include "analysis/models.h"
#include "common/rng.h"
#include "core/nn_validity.h"
#include "core/window_validity.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace lbsq::analysis {
namespace {

using test::TreeFixture;
using workload::MakeUnitUniform;

const geo::Rect kUnit(0.0, 0.0, 1.0, 1.0);

// ---------------------------------------------------------------------------
// Minskew histogram
// ---------------------------------------------------------------------------

TEST(MinskewTest, UniformDataGivesUniformDensity) {
  const auto dataset = MakeUnitUniform(50000, 1);
  MinskewHistogram hist(dataset.entries, kUnit, 100, 50);
  EXPECT_DOUBLE_EQ(hist.total_count(), 50000.0);
  // The bulk of the buckets should sit near the global density (sampling
  // noise makes a few small buckets deviate).
  size_t near = 0;
  for (const auto& b : hist.buckets()) {
    if (std::abs(b.Density() - 50000.0) < 50000.0 * 0.5) ++near;
  }
  EXPECT_GT(near * 10, hist.buckets().size() * 8);
  // Bucket areas tile the universe.
  double area = 0.0;
  for (const auto& b : hist.buckets()) area += b.Area();
  EXPECT_NEAR(area, 1.0, 1e-9);
}

TEST(MinskewTest, CountEstimatesTrackTruthOnSkewedData) {
  const auto dataset = workload::MakeClustered(
      40000, kUnit, 30, 1.2, 0.01, 0.05, 0.1, 7);
  MinskewHistogram hist(dataset.entries, kUnit, 500, 100);
  Rng rng(9);
  double total_err = 0.0;
  int trials = 0;
  for (int i = 0; i < 50; ++i) {
    const double x = rng.Uniform(0, 0.8);
    const double y = rng.Uniform(0, 0.8);
    const geo::Rect r(x, y, x + rng.Uniform(0.05, 0.2),
                      y + rng.Uniform(0.05, 0.2));
    size_t truth = 0;
    for (const auto& e : dataset.entries) {
      if (r.Contains(e.point)) ++truth;
    }
    const double est = hist.EstimateCount(r);
    total_err += std::abs(est - static_cast<double>(truth));
    ++trials;
  }
  // Average absolute error under 20% of the average true count would be
  // excellent; demand under 50% to stay robust across seeds.
  const double avg_err = total_err / trials;
  EXPECT_LT(avg_err, 0.5 * 40000 * 0.125 * 0.125);
}

TEST(MinskewTest, SplitsConcentrateWhereDataIs) {
  // All mass in one corner: buckets there should be smaller.
  const auto dataset = workload::MakeClustered(
      20000, kUnit, 3, 1.5, 0.005, 0.01, 0.0, 13);
  MinskewHistogram hist(dataset.entries, kUnit, 200, 100);
  EXPECT_GT(hist.buckets().size(), 100u);
  // The densest bucket must be far above the uniform density.
  double max_density = 0.0;
  for (const auto& b : hist.buckets()) {
    max_density = std::max(max_density, b.Density());
  }
  EXPECT_GT(max_density, 3.0 * 20000);
}

TEST(MinskewTest, BucketAtFindsContainingBucket) {
  const auto dataset = MakeUnitUniform(5000, 17);
  MinskewHistogram hist(dataset.entries, kUnit, 64, 32);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const geo::Point p{rng.NextDouble(), rng.NextDouble()};
    EXPECT_TRUE(hist.BucketAt(p).extent.Contains(p));
  }
}

// ---------------------------------------------------------------------------
// Analytical models vs measurements
// ---------------------------------------------------------------------------

TEST(ModelsTest, ExpectedKnnDistanceMatchesSimulation) {
  const size_t n = 20000;
  const auto dataset = MakeUnitUniform(n, 23);
  TreeFixture fx(dataset.entries, 64);
  Rng rng(29);
  for (size_t k : {1u, 5u, 20u}) {
    double measured = 0.0;
    const int trials = 200;
    for (int i = 0; i < trials; ++i) {
      const geo::Point q{rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)};
      const auto nn = rtree::KnnBestFirst(*fx.tree, q, k);
      measured += nn.back().distance;
    }
    measured /= trials;
    const double predicted = ExpectedKnnDistance(k, n);
    EXPECT_NEAR(predicted, measured, 0.15 * measured) << "k=" << k;
  }
}

TEST(ModelsTest, NnValidityAreaWithinFactorTwoOfMeasurement) {
  const size_t n = 20000;
  const auto dataset = MakeUnitUniform(n, 31);
  TreeFixture fx(dataset.entries, 128);
  core::NnValidityEngine engine(fx.tree.get(), kUnit);
  Rng rng(37);
  for (size_t k : {1u, 4u, 10u}) {
    double measured = 0.0;
    const int trials = 120;
    for (int i = 0; i < trials; ++i) {
      const geo::Point q{rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
      measured += engine.Query(q, k).region().Area();
    }
    measured /= trials;
    const double predicted = ExpectedNnValidityArea(k, n);
    EXPECT_GT(predicted, measured / 2.0) << "k=" << k;
    EXPECT_LT(predicted, measured * 2.0) << "k=" << k;
  }
}

TEST(ModelsTest, NnValidityAreaScalesInverselyWithDensity) {
  const double a1 = ExpectedNnValidityArea(1, 10000);
  const double a2 = ExpectedNnValidityArea(1, 100000);
  EXPECT_NEAR(a1 / a2, 10.0, 2.0);  // area ~ 1/N (Figure 22a)
}

TEST(ModelsTest, WindowValidityAreaWithinFactorTwoOfMeasurement) {
  const size_t n = 20000;
  const auto dataset = MakeUnitUniform(n, 41);
  TreeFixture fx(dataset.entries, 128);
  core::WindowValidityEngine engine(fx.tree.get(), kUnit);
  Rng rng(43);
  for (double qs : {0.0316, 0.1}) {  // window side length
    double measured = 0.0;
    const int trials = 120;
    for (int i = 0; i < trials; ++i) {
      const geo::Point q{rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)};
      measured += engine.Query(q, qs / 2, qs / 2).region().Area();
    }
    measured /= trials;
    const double predicted = ExpectedWindowValidityArea(qs, qs, n);
    EXPECT_GT(predicted, measured / 2.0) << "qs=" << qs;
    EXPECT_LT(predicted, measured * 2.0) << "qs=" << qs;
  }
}

TEST(ModelsTest, WindowTravelMatchesFormula) {
  const WindowTravel travel = ExpectedWindowTravel(0.1, 0.2, 1000.0);
  EXPECT_DOUBLE_EQ(travel.dx, 1.0 / (1000.0 * 0.2));
  EXPECT_DOUBLE_EQ(travel.dy, 1.0 / (1000.0 * 0.1));
}

TEST(ModelsTest, RTreeCostModelPredictsWindowNa) {
  const size_t n = 100000;
  const auto dataset = MakeUnitUniform(n, 47);
  TreeFixture fx(dataset.entries, 0);
  const RTreeCostModel model = RTreeCostModel::FromTree(*fx.tree, kUnit);

  Rng rng(53);
  for (double qs : {0.02, 0.05, 0.1}) {
    double measured = 0.0;
    const int trials = 100;
    for (int i = 0; i < trials; ++i) {
      const geo::Point c{rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
      fx.tree->buffer().ResetCounters();
      std::vector<rtree::DataEntry> out;
      fx.tree->WindowQuery(geo::Rect::Centered(c, qs / 2, qs / 2), &out);
      measured += static_cast<double>(fx.tree->buffer().logical_accesses());
    }
    measured /= trials;
    const double predicted = model.EstimateWindowNodeAccesses(qs, qs);
    EXPECT_GT(predicted, measured * 0.6) << "qs=" << qs;
    EXPECT_LT(predicted, measured * 1.6) << "qs=" << qs;
  }
}

TEST(ModelsTest, NnRequeryDistancePredictsMeasuredFirstInvalidations) {
  // Measure the distance a client travels from the query point along a
  // random direction until the 1-NN answer first changes, and compare
  // with the model's first moment.
  const size_t n = 20000;
  const auto dataset = MakeUnitUniform(n, 71);
  TreeFixture fx(dataset.entries, 64);
  core::NnValidityEngine engine(fx.tree.get(), kUnit);
  Rng rng(73);
  double measured = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const geo::Point q{rng.Uniform(0.2, 0.8), rng.Uniform(0.2, 0.8)};
    const auto result = engine.Query(q, 1);
    const double angle = rng.Uniform(0, 2 * M_PI);
    const geo::Vec2 dir{std::cos(angle), std::sin(angle)};
    // March until exiting the region (the exit distance along the ray).
    double lo = 0.0, hi = 0.5;
    while (result.IsValidAt(q + dir * hi) && hi < 2.0) hi *= 2.0;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      (result.IsValidAt(q + dir * mid) ? lo : hi) = mid;
    }
    measured += lo;
  }
  measured /= trials;
  const double predicted = ExpectedNnRequeryDistance(1, n);
  EXPECT_GT(predicted, measured * 0.5);
  EXPECT_LT(predicted, measured * 2.0);
}

TEST(ModelsTest, WindowRequeryDistancePredictsMeasuredFirstInvalidations) {
  const size_t n = 20000;
  const auto dataset = MakeUnitUniform(n, 77);
  TreeFixture fx(dataset.entries, 64);
  core::WindowValidityEngine engine(fx.tree.get(), kUnit);
  Rng rng(79);
  const double side = std::sqrt(0.001);
  double measured = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const geo::Point q{rng.Uniform(0.3, 0.7), rng.Uniform(0.3, 0.7)};
    const auto result = engine.Query(q, side / 2, side / 2);
    const double angle = rng.Uniform(0, 2 * M_PI);
    const geo::Vec2 dir{std::cos(angle), std::sin(angle)};
    double lo = 0.0, hi = side;
    while (result.IsValidAt(q + dir * hi) && hi < 2.0) hi *= 2.0;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      (result.IsValidAt(q + dir * mid) ? lo : hi) = mid;
    }
    measured += lo;
  }
  measured /= trials;
  const double predicted = ExpectedWindowRequeryDistance(side, side, n);
  EXPECT_GT(predicted, measured * 0.5);
  EXPECT_LT(predicted, measured * 2.0);
}

TEST(ModelsTest, HistogramDensityFeedsNnModelOnSkewedData) {
  // On skewed data the local density (not N) drives the validity-region
  // size; verify the Minskew-fed model lands within a factor of ~3 on
  // average (the paper reports accurate estimates with 500 buckets).
  const size_t n = 50000;
  const auto dataset = workload::MakeClustered(
      n, kUnit, 50, 1.2, 0.01, 0.04, 0.1, 59);
  TreeFixture fx(dataset.entries, 128);
  core::NnValidityEngine engine(fx.tree.get(), kUnit);
  MinskewHistogram hist(dataset.entries, kUnit, 500, 100);

  const auto queries =
      workload::MakeDataDistributedQueries(dataset, 100, 61, 0.005);
  double ratio_sum = 0.0;
  int counted = 0;
  for (const geo::Point& q : queries) {
    const double measured = engine.Query(q, 1).region().Area();
    const double rho = hist.NnLocalDensity(q, 64.0);
    if (rho <= 0.0 || measured <= 0.0) continue;
    const double predicted = ExpectedNnValidityArea(1, rho);
    ratio_sum += std::log(predicted / measured);
    ++counted;
  }
  ASSERT_GT(counted, 50);
  const double geo_mean_ratio = std::exp(ratio_sum / counted);
  EXPECT_GT(geo_mean_ratio, 1.0 / 3.0);
  EXPECT_LT(geo_mean_ratio, 3.0);
}

}  // namespace
}  // namespace lbsq::analysis
