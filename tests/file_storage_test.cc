#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "rtree/knn.h"
#include "rtree/rtree.h"
#include "storage/file_page_manager.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace lbsq::storage {
namespace {

std::string TempPath(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string(::testing::TempDir()) + "lbsq_" + info->name() + "_" +
         name + ".db";
}

TEST(FilePageManagerTest, ReadWriteRoundTrip) {
  const std::string path = TempPath("rw");
  FilePageManager store(path, FilePageManager::Mode::kCreate);
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  EXPECT_NE(a, b);
  Page page;
  page.WriteAt<uint64_t>(0, 0x1122334455667788ULL);
  store.Write(a, page);
  Page out;
  store.Read(a, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0x1122334455667788ULL);
  // Fresh pages are zeroed.
  store.Read(b, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0u);
  EXPECT_EQ(store.read_count(), 2u);
  std::remove(path.c_str());
}

TEST(FilePageManagerTest, PersistsAcrossReopen) {
  const std::string path = TempPath("reopen");
  PageId a = 0, b = 0;
  {
    FilePageManager store(path, FilePageManager::Mode::kCreate);
    a = store.Allocate();
    b = store.Allocate();
    Page page;
    page.WriteAt<uint32_t>(16, 777u);
    store.Write(b, page);
    store.Free(a);
  }  // destructor syncs
  {
    FilePageManager store(path, FilePageManager::Mode::kOpen);
    EXPECT_EQ(store.live_pages(), 1u);
    Page out;
    store.Read(b, &out);
    EXPECT_EQ(out.ReadAt<uint32_t>(16), 777u);
    // The freed page is reused before the file grows.
    const PageId c = store.Allocate();
    EXPECT_EQ(c, a);
  }
  std::remove(path.c_str());
}

TEST(FilePageManagerTest, RTreePersistsAcrossReopen) {
  const std::string path = TempPath("tree");
  const auto dataset = workload::MakeUnitUniform(3000, 404);
  rtree::RTree::Options options = test::SmallNodeOptions();
  rtree::RTree::Meta meta;
  PageId meta_page = 0;
  {
    FilePageManager store(path, FilePageManager::Mode::kCreate);
    // Reserve a page for the tree meta before the tree allocates.
    meta_page = store.Allocate();
    rtree::RTree tree(&store, 64, options);
    tree.BulkLoad(dataset.entries);
    // A few post-load updates so the persisted tree is not pristine.
    for (int i = 0; i < 100; ++i) {
      tree.Insert({0.5 + i * 1e-4, 0.5}, 100000u + i);
    }
    ASSERT_TRUE(tree.Delete(dataset.entries[0].point, dataset.entries[0].id));
    tree.buffer().FlushAll();
    meta = tree.meta();
    Page mp;
    meta.SerializeTo(&mp, 0);
    store.Write(meta_page, mp);
  }
  {
    FilePageManager store(path, FilePageManager::Mode::kOpen);
    Page mp;
    store.Read(meta_page, &mp);
    const auto restored = rtree::RTree::Meta::DeserializeFrom(mp, 0);
    rtree::RTree tree(&store, 64, options, restored);
    EXPECT_EQ(tree.size(), dataset.entries.size() + 100 - 1);
    tree.CheckInvariants();

    // Queries on the reopened tree match brute force.
    std::vector<rtree::DataEntry> reference = dataset.entries;
    reference.erase(reference.begin());
    for (int i = 0; i < 100; ++i) {
      reference.push_back({{0.5 + i * 1e-4, 0.5}, 100000u + i});
    }
    const geo::Rect w(0.4, 0.4, 0.6, 0.6);
    std::vector<rtree::DataEntry> out;
    tree.WindowQuery(w, &out);
    EXPECT_EQ(test::Ids(out), test::Ids(test::BruteForceWindow(reference, w)));

    const auto nn = rtree::KnnBestFirst(tree, {0.25, 0.75}, 5);
    const auto expected = test::BruteForceKnn(reference, {0.25, 0.75}, 5);
    ASSERT_EQ(nn.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(nn[i].entry.id, expected[i].entry.id);
    }
  }
  std::remove(path.c_str());
}

TEST(FilePageManagerTest, CountersCountPhysicalIo) {
  const std::string path = TempPath("counters");
  FilePageManager store(path, FilePageManager::Mode::kCreate);
  const PageId a = store.Allocate();
  store.ResetCounters();
  Page page;
  store.Read(a, &page);
  store.Write(a, page);
  store.ReadRef(a);
  EXPECT_EQ(store.read_count(), 2u);
  EXPECT_EQ(store.write_count(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lbsq::storage
