#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"
#include "storage/checksummed_page_store.h"
#include "storage/file_page_manager.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace lbsq::storage {
namespace {

std::string TempPath(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string(::testing::TempDir()) + "lbsq_" + info->name() + "_" +
         name + ".db";
}

TEST(FilePageManagerTest, ReadWriteRoundTrip) {
  const std::string path = TempPath("rw");
  FilePageManager store(path, FilePageManager::Mode::kCreate);
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  EXPECT_NE(a, b);
  Page page;
  page.WriteAt<uint64_t>(0, 0x1122334455667788ULL);
  store.Write(a, page);
  Page out;
  store.Read(a, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0x1122334455667788ULL);
  // Fresh pages are zeroed.
  store.Read(b, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0u);
  EXPECT_EQ(store.read_count(), 2u);
  std::remove(path.c_str());
}

TEST(FilePageManagerTest, PersistsAcrossReopen) {
  const std::string path = TempPath("reopen");
  PageId a = 0, b = 0;
  {
    FilePageManager store(path, FilePageManager::Mode::kCreate);
    a = store.Allocate();
    b = store.Allocate();
    Page page;
    page.WriteAt<uint32_t>(16, 777u);
    store.Write(b, page);
    store.Free(a);
  }  // destructor syncs
  {
    FilePageManager store(path, FilePageManager::Mode::kOpen);
    EXPECT_EQ(store.live_pages(), 1u);
    Page out;
    store.Read(b, &out);
    EXPECT_EQ(out.ReadAt<uint32_t>(16), 777u);
    // The freed page is reused before the file grows.
    const PageId c = store.Allocate();
    EXPECT_EQ(c, a);
  }
  std::remove(path.c_str());
}

TEST(FilePageManagerTest, RTreePersistsAcrossReopen) {
  const std::string path = TempPath("tree");
  const auto dataset = workload::MakeUnitUniform(3000, 404);
  rtree::RTree::Options options = test::SmallNodeOptions();
  rtree::RTree::Meta meta;
  PageId meta_page = 0;
  {
    FilePageManager store(path, FilePageManager::Mode::kCreate);
    // Reserve a page for the tree meta before the tree allocates.
    meta_page = store.Allocate();
    rtree::RTree tree(&store, 64, options);
    tree.BulkLoad(dataset.entries);
    // A few post-load updates so the persisted tree is not pristine.
    for (int i = 0; i < 100; ++i) {
      tree.Insert({0.5 + i * 1e-4, 0.5}, 100000u + i);
    }
    ASSERT_TRUE(tree.Delete(dataset.entries[0].point, dataset.entries[0].id));
    tree.buffer().FlushAll();
    meta = tree.meta();
    Page mp;
    meta.SerializeTo(&mp, 0);
    store.Write(meta_page, mp);
  }
  {
    FilePageManager store(path, FilePageManager::Mode::kOpen);
    Page mp;
    store.Read(meta_page, &mp);
    const auto restored = rtree::RTree::Meta::DeserializeFrom(mp, 0);
    rtree::RTree tree(&store, 64, options, restored);
    EXPECT_EQ(tree.size(), dataset.entries.size() + 100 - 1);
    tree.CheckInvariants();

    // Queries on the reopened tree match brute force.
    std::vector<rtree::DataEntry> reference = dataset.entries;
    reference.erase(reference.begin());
    for (int i = 0; i < 100; ++i) {
      reference.push_back({{0.5 + i * 1e-4, 0.5}, 100000u + i});
    }
    const geo::Rect w(0.4, 0.4, 0.6, 0.6);
    std::vector<rtree::DataEntry> out;
    tree.WindowQuery(w, &out);
    EXPECT_EQ(test::Ids(out), test::Ids(test::BruteForceWindow(reference, w)));

    const auto nn = rtree::KnnBestFirst(tree, {0.25, 0.75}, 5);
    const auto expected = test::BruteForceKnn(reference, {0.25, 0.75}, 5);
    ASSERT_EQ(nn.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(nn[i].entry.id, expected[i].entry.id);
    }
  }
  std::remove(path.c_str());
}

// The CLI's integrity setup: build through a checksum layer, persist the
// table to a sidecar, damage the index file on disk between sessions, and
// the reopened store must report the damage instead of serving it.
TEST(ChecksummedFileStoreTest, SidecarDetectsOnDiskCorruption) {
  const std::string path = TempPath("sums");
  const std::string sidecar = path + ".sum";
  PageId target = 0;
  size_t pages = 0;
  {
    FilePageManager file(path, FilePageManager::Mode::kCreate);
    ChecksummedPageStore store(&file);
    Page page;
    for (int i = 0; i < 6; ++i) {
      const PageId id = store.Allocate();
      page.WriteAt<uint64_t>(0, 0xa000 + i);
      page.WriteAt<uint64_t>(kPageSize / 2 + 8, 0xb000 + i);
      store.Write(id, page);
      if (i == 3) target = id;
    }
    pages = file.live_pages();
    ASSERT_TRUE(store.SaveTable(sidecar).ok());
  }

  // Flip one byte of the target page directly in the index file.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    // FilePageManager stores page payloads after a one-page file header.
    const long offset =
        static_cast<long>((target + 1) * kPageSize + kPageSize / 2 + 8);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(byte ^ 0x20, f);
    std::fclose(f);
  }

  {
    FilePageManager file(path, FilePageManager::Mode::kOpen);
    ChecksummedPageStore store(&file);
    ASSERT_TRUE(store.LoadTable(sidecar).ok());
    EXPECT_EQ(store.Scrub(), 1u);

    // A read of the damaged page reports data loss and yields zeros; the
    // other pages still verify.
    PageStore::ClearReadError();
    Page out;
    store.Read(target, &out);
    const Status s = PageStore::TakeReadError();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
    EXPECT_EQ(out.ReadAt<uint64_t>(0), 0u);
    for (PageId id = 0; id < pages; ++id) {
      if (id == target) continue;
      PageStore::ClearReadError();
      store.Read(id, &out);
      EXPECT_TRUE(PageStore::TakeReadError().ok()) << "page " << id;
    }
  }
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

// A damaged sidecar must fail closed (kDataLoss), never load a half table.
TEST(ChecksummedFileStoreTest, DamagedSidecarIsRejected) {
  const std::string path = TempPath("badsidecar");
  const std::string sidecar = path + ".sum";
  {
    FilePageManager file(path, FilePageManager::Mode::kCreate);
    ChecksummedPageStore store(&file);
    Page page;
    page.WriteAt<uint64_t>(0, 1u);
    store.Write(store.Allocate(), page);
    ASSERT_TRUE(store.SaveTable(sidecar).ok());
  }
  // Flip a byte in the middle of the sidecar.
  {
    std::FILE* f = std::fopen(sidecar.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 18, SEEK_SET), 0);
    int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, 18, SEEK_SET), 0);
    std::fputc(byte ^ 0x01, f);
    std::fclose(f);
  }
  {
    FilePageManager file(path, FilePageManager::Mode::kOpen);
    ChecksummedPageStore store(&file);
    const Status s = store.LoadTable(sidecar);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  }
  // A missing sidecar is merely unavailable (integrity net down), which
  // the CLI treats as a warning, not an error.
  {
    FilePageManager file(path, FilePageManager::Mode::kOpen);
    ChecksummedPageStore store(&file);
    const Status s = store.LoadTable(sidecar + ".missing");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  }
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

TEST(FilePageManagerTest, CountersCountPhysicalIo) {
  const std::string path = TempPath("counters");
  FilePageManager store(path, FilePageManager::Mode::kCreate);
  const PageId a = store.Allocate();
  store.ResetCounters();
  Page page;
  store.Read(a, &page);
  store.Write(a, page);
  store.ReadRef(a);
  EXPECT_EQ(store.read_count(), 2u);
  EXPECT_EQ(store.write_count(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lbsq::storage
