#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "storage/checksummed_page_store.h"
#include "storage/fault_injecting_page_store.h"
#include "storage/lru_buffer_pool.h"
#include "storage/page.h"
#include "storage/page_manager.h"

namespace lbsq::storage {
namespace {

TEST(PageTest, TypedReadWriteRoundTrip) {
  Page page;
  page.WriteAt<double>(0, 3.25);
  page.WriteAt<uint32_t>(8, 42u);
  page.WriteAt<uint16_t>(kPageSize - 2, 7u);
  EXPECT_DOUBLE_EQ(page.ReadAt<double>(0), 3.25);
  EXPECT_EQ(page.ReadAt<uint32_t>(8), 42u);
  EXPECT_EQ(page.ReadAt<uint16_t>(kPageSize - 2), 7u);
}

TEST(PageManagerTest, AllocateReadWrite) {
  PageManager manager;
  const PageId a = manager.Allocate();
  const PageId b = manager.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(manager.live_pages(), 2u);

  Page page;
  page.WriteAt<uint64_t>(0, 0xdeadbeefULL);
  manager.Write(a, page);

  Page out;
  manager.Read(a, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0xdeadbeefULL);
  EXPECT_EQ(manager.read_count(), 1u);
  EXPECT_EQ(manager.write_count(), 1u);
}

TEST(PageManagerTest, FreedPagesAreReusedZeroed) {
  PageManager manager;
  const PageId a = manager.Allocate();
  Page page;
  page.WriteAt<uint64_t>(0, 123u);
  manager.Write(a, page);
  manager.Free(a);
  EXPECT_EQ(manager.live_pages(), 0u);
  const PageId b = manager.Allocate();
  EXPECT_EQ(a, b);  // reused
  Page out;
  manager.Read(b, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0u);  // zeroed on reuse
}

TEST(PageManagerTest, CountersResetIndependentlyOfContent) {
  PageManager manager;
  const PageId a = manager.Allocate();
  Page page;
  manager.Write(a, page);
  manager.Read(a, &page);
  manager.ResetCounters();
  EXPECT_EQ(manager.read_count(), 0u);
  EXPECT_EQ(manager.write_count(), 0u);
  manager.Read(a, &page);
  EXPECT_EQ(manager.read_count(), 1u);
}

TEST(LruBufferPoolTest, HitsAvoidPhysicalReads) {
  PageManager manager;
  const PageId a = manager.Allocate();
  LruBufferPool pool(&manager, 4);
  manager.ResetCounters();

  pool.Fetch(a);
  pool.Fetch(a);
  pool.Fetch(a);
  EXPECT_EQ(pool.logical_accesses(), 3u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(manager.read_count(), 1u);  // only the first fetch went to disk
}

TEST(LruBufferPoolTest, EvictsLeastRecentlyUsed) {
  PageManager manager;
  PageId ids[3] = {manager.Allocate(), manager.Allocate(),
                   manager.Allocate()};
  LruBufferPool pool(&manager, 2);
  manager.ResetCounters();

  pool.Fetch(ids[0]);
  pool.Fetch(ids[1]);
  pool.Fetch(ids[0]);  // 0 is now MRU; LRU order: 1, 0
  pool.Fetch(ids[2]);  // evicts 1
  EXPECT_EQ(manager.read_count(), 3u);

  pool.Fetch(ids[0]);  // hit
  EXPECT_EQ(manager.read_count(), 3u);
  pool.Fetch(ids[1]);  // miss (was evicted)
  EXPECT_EQ(manager.read_count(), 4u);
}

TEST(LruBufferPoolTest, WriteThroughCachingAndFlush) {
  PageManager manager;
  const PageId a = manager.Allocate();
  LruBufferPool pool(&manager, 2);
  manager.ResetCounters();

  Page page;
  page.WriteAt<uint32_t>(0, 9u);
  pool.Write(a, page);
  EXPECT_EQ(manager.write_count(), 0u);  // buffered, not yet on disk

  // Reading through the pool sees the dirty copy.
  EXPECT_EQ(pool.Fetch(a).ReadAt<uint32_t>(0), 9u);
  EXPECT_EQ(manager.read_count(), 0u);

  pool.FlushAll();
  EXPECT_EQ(manager.write_count(), 1u);
  Page out;
  manager.Read(a, &out);
  EXPECT_EQ(out.ReadAt<uint32_t>(0), 9u);
}

TEST(LruBufferPoolTest, DirtyEvictionWritesBack) {
  PageManager manager;
  PageId ids[3] = {manager.Allocate(), manager.Allocate(),
                   manager.Allocate()};
  LruBufferPool pool(&manager, 1);
  manager.ResetCounters();

  Page page;
  page.WriteAt<uint32_t>(0, 77u);
  pool.Write(ids[0], page);
  pool.Fetch(ids[1]);  // evicts dirty page 0
  EXPECT_EQ(manager.write_count(), 1u);
  Page out;
  manager.Read(ids[0], &out);
  EXPECT_EQ(out.ReadAt<uint32_t>(0), 77u);
  (void)ids[2];
}

TEST(LruBufferPoolTest, MidpointInsertionKeepsScansOffTheHotSet) {
  // Capacity 8 → old-sublist target 3, young capacity 5. Fill the pool,
  // promote five pages into the young sublist by re-fetching them, then
  // sweep 100 one-touch pages. The sweep must cycle entirely through the
  // old 3/8: every hot page survives and no young frame is ever evicted.
  PageManager manager;
  std::vector<PageId> hot, cold, filler;
  for (int i = 0; i < 5; ++i) hot.push_back(manager.Allocate());
  for (int i = 0; i < 3; ++i) filler.push_back(manager.Allocate());
  for (int i = 0; i < 100; ++i) cold.push_back(manager.Allocate());

  LruBufferPool pool(&manager, 8);
  for (const PageId id : hot) pool.Fetch(id);
  for (const PageId id : filler) pool.Fetch(id);
  for (const PageId id : hot) pool.Fetch(id);  // promote to young
  EXPECT_EQ(pool.promotions(), 5u);
  EXPECT_EQ(pool.old_sublist_size(), 3u);
  pool.ResetCounters();

  for (const PageId id : cold) pool.Fetch(id);  // one-touch scan
  EXPECT_EQ(pool.midpoint_insertions(), 100u);
  EXPECT_EQ(pool.young_evictions(), 0u);  // the hot set was never touched

  const uint64_t misses_before = pool.misses();
  for (const PageId id : hot) pool.Fetch(id);
  EXPECT_EQ(pool.misses(), misses_before);  // all five still resident

  // A plain MRU-insert LRU would have flushed them: the fillers, which
  // stayed in the old sublist, did get scanned out.
  pool.Fetch(filler[0]);
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

TEST(LruBufferPoolTest, ZeroCapacityBypassesCache) {
  PageManager manager;
  const PageId a = manager.Allocate();
  LruBufferPool pool(&manager, 0);
  manager.ResetCounters();

  pool.Fetch(a);
  pool.Fetch(a);
  EXPECT_EQ(manager.read_count(), 2u);  // every access is physical
  EXPECT_EQ(pool.logical_accesses(), 2u);

  Page page;
  pool.Write(a, page);
  EXPECT_EQ(manager.write_count(), 1u);
}

TEST(LruBufferPoolTest, ResizeShrinksAndEvicts) {
  PageManager manager;
  PageId ids[4];
  for (auto& id : ids) id = manager.Allocate();
  LruBufferPool pool(&manager, 4);
  for (const auto& id : ids) pool.Fetch(id);
  EXPECT_EQ(pool.size(), 4u);
  pool.Resize(2);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(LruBufferPoolTest, DiscardDropsWithoutWriteback) {
  PageManager manager;
  const PageId a = manager.Allocate();
  LruBufferPool pool(&manager, 2);
  manager.ResetCounters();
  Page page;
  page.WriteAt<uint32_t>(0, 5u);
  pool.Write(a, page);
  pool.Discard(a);
  pool.FlushAll();
  EXPECT_EQ(manager.write_count(), 0u);  // dirty copy was discarded
}

TEST(ChecksummedPageStoreTest, CleanReadsPassThroughUnchanged) {
  PageManager manager;
  ChecksummedPageStore store(&manager);
  const PageId a = store.Allocate();
  Page page;
  page.WriteAt<uint64_t>(0, 0xfeedfaceULL);
  page.WriteAt<uint64_t>(kPageSize - 8, 77u);
  store.Write(a, page);

  PageStore::ClearReadError();
  Page out;
  store.Read(a, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0xfeedfaceULL);
  EXPECT_EQ(out.ReadAt<uint64_t>(kPageSize - 8), 77u);
  EXPECT_EQ(store.ReadRef(a).ReadAt<uint64_t>(0), 0xfeedfaceULL);
  EXPECT_TRUE(PageStore::TakeReadError().ok());
  EXPECT_EQ(store.verification_failures(), 0u);
}

TEST(ChecksummedPageStoreTest, DetectsCorruptionAndDegradesToZeroPage) {
  PageManager manager;
  ChecksummedPageStore store(&manager);
  const PageId a = store.Allocate();
  Page page;
  page.WriteAt<uint64_t>(0, 0xfeedfaceULL);
  store.Write(a, page);

  // Corrupt the page *underneath* the checksum layer: flip one bit.
  Page raw;
  manager.Read(a, &raw);
  raw.mutable_data()[100] ^= 0x04;
  manager.Write(a, raw);

  PageStore::ClearReadError();
  Page out;
  store.Read(a, &out);
  const Status error = PageStore::TakeReadError();
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.verification_failures(), 1u);
  // The caller never sees the corrupt bytes: the page degrades to zeros,
  // which parses as an empty leaf.
  for (size_t i = 0; i < kPageSize; i += 8) {
    EXPECT_EQ(out.ReadAt<uint64_t>(i), 0u);
  }

  // ReadRef likewise returns a zero page, not the corrupt bytes.
  PageStore::ClearReadError();
  const Page& ref = store.ReadRef(a);
  EXPECT_EQ(ref.ReadAt<uint64_t>(0), 0u);
  EXPECT_FALSE(PageStore::TakeReadError().ok());

  // Writing fresh content re-stamps the checksum and heals the page.
  store.Write(a, page);
  PageStore::ClearReadError();
  store.Read(a, &out);
  EXPECT_TRUE(PageStore::TakeReadError().ok());
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0xfeedfaceULL);
}

TEST(ChecksummedPageStoreTest, FirstReadErrorWinsUntilTaken) {
  PageManager manager;
  ChecksummedPageStore store(&manager);
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  Page raw;
  raw.WriteAt<uint64_t>(0, 1u);
  manager.Write(a, raw);  // bypasses the stamp: page a is now corrupt
  raw.WriteAt<uint64_t>(0, 2u);
  manager.Write(b, raw);  // so is page b

  PageStore::ClearReadError();
  Page out;
  store.Read(a, &out);
  store.Read(b, &out);
  const Status first = PageStore::TakeReadError();
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.message().find("page " + std::to_string(a)),
            std::string::npos);
  // Taking the error resets the channel.
  EXPECT_TRUE(PageStore::PendingReadError().ok());
}

TEST(ChecksummedPageStoreTest, ScrubCountsCorruptPagesWithoutSideEffects) {
  PageManager manager;
  ChecksummedPageStore store(&manager);
  Page page;
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    const PageId id = store.Allocate();
    page.WriteAt<uint64_t>(0, 1000 + i);
    store.Write(id, page);
    ids.push_back(id);
  }
  EXPECT_EQ(store.Scrub(), 0u);

  Page raw;
  manager.Read(ids[2], &raw);
  raw.mutable_data()[1] ^= 0x80;
  manager.Write(ids[2], raw);
  manager.Read(ids[5], &raw);
  raw.mutable_data()[4000] ^= 0x01;
  manager.Write(ids[5], raw);

  PageStore::ClearReadError();
  EXPECT_EQ(store.Scrub(), 2u);
  // Scrub is a diagnostic: it records no read error.
  EXPECT_TRUE(PageStore::TakeReadError().ok());
}

TEST(FaultInjectingPageStoreTest, DisarmedIsTransparent) {
  PageManager manager;
  FaultInjectingPageStore::Options options;
  options.read_fault_probability = 1.0;
  options.torn_write_probability = 1.0;
  FaultInjectingPageStore store(&manager, options);
  const PageId a = store.Allocate();
  Page page;
  page.WriteAt<uint64_t>(0, 42u);
  store.Write(a, page);  // not torn: faults start disarmed

  PageStore::ClearReadError();
  Page out;
  store.Read(a, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 42u);
  EXPECT_TRUE(PageStore::TakeReadError().ok());
  EXPECT_EQ(store.injected_read_faults(), 0u);
  EXPECT_EQ(store.injected_torn_writes(), 0u);
}

TEST(FaultInjectingPageStoreTest, ReadFaultIsUnavailableAndTransient) {
  PageManager manager;
  FaultInjectingPageStore::Options options;
  options.seed = 7;
  options.read_fault_probability = 0.5;
  FaultInjectingPageStore store(&manager, options);
  const PageId a = store.Allocate();
  Page page;
  page.WriteAt<uint64_t>(0, 42u);
  store.Write(a, page);
  store.arm();

  // With p = 0.5, 200 reads see both failures and successes; failures are
  // kUnavailable (retryable) and hand back a zero page.
  size_t failures = 0, successes = 0;
  for (int i = 0; i < 200; ++i) {
    PageStore::ClearReadError();
    Page out;
    store.Read(a, &out);
    const Status s = PageStore::TakeReadError();
    if (s.ok()) {
      ++successes;
      EXPECT_EQ(out.ReadAt<uint64_t>(0), 42u);
    } else {
      ++failures;
      EXPECT_EQ(s.code(), StatusCode::kUnavailable);
      EXPECT_TRUE(IsRetryable(s));
      EXPECT_EQ(out.ReadAt<uint64_t>(0), 0u);
    }
  }
  EXPECT_GT(failures, 0u);
  EXPECT_GT(successes, 0u);
  EXPECT_EQ(store.injected_read_faults(), failures);
}

TEST(FaultInjectingPageStoreTest, CorruptionIsSilentUntilChecksummed) {
  PageManager manager;
  FaultInjectingPageStore::Options options;
  options.seed = 11;
  options.read_corruption_probability = 1.0;
  FaultInjectingPageStore faulty(&manager, options);
  // Production stacking: verification sits *above* the corruption source.
  ChecksummedPageStore store(&faulty);
  const PageId a = store.Allocate();
  Page page;
  page.WriteAt<uint64_t>(0, 42u);
  store.Write(a, page);
  faulty.arm();

  PageStore::ClearReadError();
  Page out;
  store.Read(a, &out);
  const Status s = PageStore::TakeReadError();
  ASSERT_FALSE(s.ok());
  // Every read is bit-flipped, and the checksum layer reports it as data
  // loss — not as a transient fault.
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_GT(faulty.injected_corruptions(), 0u);
  EXPECT_EQ(store.verification_failures(), 1u);
}

TEST(FaultInjectingPageStoreTest, TornWriteIsCaughtOnLaterRead) {
  PageManager manager;
  FaultInjectingPageStore::Options options;
  options.seed = 13;
  options.torn_write_probability = 1.0;
  FaultInjectingPageStore faulty(&manager, options);
  ChecksummedPageStore store(&faulty);
  const PageId a = store.Allocate();
  Page page;
  // Content in the second half of the page, which a torn write drops.
  page.WriteAt<uint64_t>(kPageSize - 8, 0xabcdefULL);
  faulty.arm();
  store.Write(a, page);
  EXPECT_EQ(faulty.injected_torn_writes(), 1u);
  faulty.disarm();

  PageStore::ClearReadError();
  Page out;
  store.Read(a, &out);
  const Status s = PageStore::TakeReadError();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST(FaultInjectingPageStoreTest, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    PageManager manager;
    FaultInjectingPageStore::Options options;
    options.seed = seed;
    options.read_fault_probability = 0.3;
    FaultInjectingPageStore store(&manager, options);
    const PageId a = store.Allocate();
    store.arm();
    std::vector<bool> fates;
    for (int i = 0; i < 64; ++i) {
      PageStore::ClearReadError();
      Page out;
      store.Read(a, &out);
      fates.push_back(PageStore::TakeReadError().ok());
    }
    return fates;
  };
  EXPECT_EQ(run(21), run(21));
  EXPECT_NE(run(21), run(22));
}

}  // namespace
}  // namespace lbsq::storage
