#include <gtest/gtest.h>

#include "storage/lru_buffer_pool.h"
#include "storage/page.h"
#include "storage/page_manager.h"

namespace lbsq::storage {
namespace {

TEST(PageTest, TypedReadWriteRoundTrip) {
  Page page;
  page.WriteAt<double>(0, 3.25);
  page.WriteAt<uint32_t>(8, 42u);
  page.WriteAt<uint16_t>(kPageSize - 2, 7u);
  EXPECT_DOUBLE_EQ(page.ReadAt<double>(0), 3.25);
  EXPECT_EQ(page.ReadAt<uint32_t>(8), 42u);
  EXPECT_EQ(page.ReadAt<uint16_t>(kPageSize - 2), 7u);
}

TEST(PageManagerTest, AllocateReadWrite) {
  PageManager manager;
  const PageId a = manager.Allocate();
  const PageId b = manager.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(manager.live_pages(), 2u);

  Page page;
  page.WriteAt<uint64_t>(0, 0xdeadbeefULL);
  manager.Write(a, page);

  Page out;
  manager.Read(a, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0xdeadbeefULL);
  EXPECT_EQ(manager.read_count(), 1u);
  EXPECT_EQ(manager.write_count(), 1u);
}

TEST(PageManagerTest, FreedPagesAreReusedZeroed) {
  PageManager manager;
  const PageId a = manager.Allocate();
  Page page;
  page.WriteAt<uint64_t>(0, 123u);
  manager.Write(a, page);
  manager.Free(a);
  EXPECT_EQ(manager.live_pages(), 0u);
  const PageId b = manager.Allocate();
  EXPECT_EQ(a, b);  // reused
  Page out;
  manager.Read(b, &out);
  EXPECT_EQ(out.ReadAt<uint64_t>(0), 0u);  // zeroed on reuse
}

TEST(PageManagerTest, CountersResetIndependentlyOfContent) {
  PageManager manager;
  const PageId a = manager.Allocate();
  Page page;
  manager.Write(a, page);
  manager.Read(a, &page);
  manager.ResetCounters();
  EXPECT_EQ(manager.read_count(), 0u);
  EXPECT_EQ(manager.write_count(), 0u);
  manager.Read(a, &page);
  EXPECT_EQ(manager.read_count(), 1u);
}

TEST(LruBufferPoolTest, HitsAvoidPhysicalReads) {
  PageManager manager;
  const PageId a = manager.Allocate();
  LruBufferPool pool(&manager, 4);
  manager.ResetCounters();

  pool.Fetch(a);
  pool.Fetch(a);
  pool.Fetch(a);
  EXPECT_EQ(pool.logical_accesses(), 3u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(manager.read_count(), 1u);  // only the first fetch went to disk
}

TEST(LruBufferPoolTest, EvictsLeastRecentlyUsed) {
  PageManager manager;
  PageId ids[3] = {manager.Allocate(), manager.Allocate(),
                   manager.Allocate()};
  LruBufferPool pool(&manager, 2);
  manager.ResetCounters();

  pool.Fetch(ids[0]);
  pool.Fetch(ids[1]);
  pool.Fetch(ids[0]);  // 0 is now MRU; LRU order: 1, 0
  pool.Fetch(ids[2]);  // evicts 1
  EXPECT_EQ(manager.read_count(), 3u);

  pool.Fetch(ids[0]);  // hit
  EXPECT_EQ(manager.read_count(), 3u);
  pool.Fetch(ids[1]);  // miss (was evicted)
  EXPECT_EQ(manager.read_count(), 4u);
}

TEST(LruBufferPoolTest, WriteThroughCachingAndFlush) {
  PageManager manager;
  const PageId a = manager.Allocate();
  LruBufferPool pool(&manager, 2);
  manager.ResetCounters();

  Page page;
  page.WriteAt<uint32_t>(0, 9u);
  pool.Write(a, page);
  EXPECT_EQ(manager.write_count(), 0u);  // buffered, not yet on disk

  // Reading through the pool sees the dirty copy.
  EXPECT_EQ(pool.Fetch(a).ReadAt<uint32_t>(0), 9u);
  EXPECT_EQ(manager.read_count(), 0u);

  pool.FlushAll();
  EXPECT_EQ(manager.write_count(), 1u);
  Page out;
  manager.Read(a, &out);
  EXPECT_EQ(out.ReadAt<uint32_t>(0), 9u);
}

TEST(LruBufferPoolTest, DirtyEvictionWritesBack) {
  PageManager manager;
  PageId ids[3] = {manager.Allocate(), manager.Allocate(),
                   manager.Allocate()};
  LruBufferPool pool(&manager, 1);
  manager.ResetCounters();

  Page page;
  page.WriteAt<uint32_t>(0, 77u);
  pool.Write(ids[0], page);
  pool.Fetch(ids[1]);  // evicts dirty page 0
  EXPECT_EQ(manager.write_count(), 1u);
  Page out;
  manager.Read(ids[0], &out);
  EXPECT_EQ(out.ReadAt<uint32_t>(0), 77u);
  (void)ids[2];
}

TEST(LruBufferPoolTest, ZeroCapacityBypassesCache) {
  PageManager manager;
  const PageId a = manager.Allocate();
  LruBufferPool pool(&manager, 0);
  manager.ResetCounters();

  pool.Fetch(a);
  pool.Fetch(a);
  EXPECT_EQ(manager.read_count(), 2u);  // every access is physical
  EXPECT_EQ(pool.logical_accesses(), 2u);

  Page page;
  pool.Write(a, page);
  EXPECT_EQ(manager.write_count(), 1u);
}

TEST(LruBufferPoolTest, ResizeShrinksAndEvicts) {
  PageManager manager;
  PageId ids[4];
  for (auto& id : ids) id = manager.Allocate();
  LruBufferPool pool(&manager, 4);
  for (const auto& id : ids) pool.Fetch(id);
  EXPECT_EQ(pool.size(), 4u);
  pool.Resize(2);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(LruBufferPoolTest, DiscardDropsWithoutWriteback) {
  PageManager manager;
  const PageId a = manager.Allocate();
  LruBufferPool pool(&manager, 2);
  manager.ResetCounters();
  Page page;
  page.WriteAt<uint32_t>(0, 5u);
  pool.Write(a, page);
  pool.Discard(a);
  pool.FlushAll();
  EXPECT_EQ(manager.write_count(), 0u);  // dirty copy was discarded
}

}  // namespace
}  // namespace lbsq::storage
