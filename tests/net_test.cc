// End-to-end tests of the TCP serving subsystem (src/net): frame codec
// round-trips and rejections, the poll loop over real loopback sockets,
// request routing to Server::*QueryWire, pipelining, per-request error
// recovery, the connection cap, and graceful drain. The differential
// property throughout: bytes received over the socket are bit-identical
// to what the in-process wire path returns for the same query.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/semantic_cache.h"
#include "core/server.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "net/write_queue.h"
#include "tests/test_util.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace lbsq::net {
namespace {

using test::SmallNodeOptions;
using test::TreeFixture;

const geo::Rect kUnit(0.0, 0.0, 1.0, 1.0);

// -- Frame codec -------------------------------------------------------------

TEST(FrameTest, RoundTripsSingleFrame) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> bytes =
      EncodeFrame(FrameType::kPing, 42, payload);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());

  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameTest, DecodesManyFramesFromOneFeed) {
  std::vector<uint8_t> stream;
  for (uint32_t id = 0; id < 10; ++id) {
    const std::vector<uint8_t> payload(id, static_cast<uint8_t>(id));
    AppendFrame(FrameType::kAnswer, id, payload.data(), payload.size(),
                &stream);
  }
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  Frame frame;
  for (uint32_t id = 0; id < 10; ++id) {
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(frame.payload.size(), id);
  }
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
}

TEST(FrameTest, ByteAtATimeFeedMatchesWholeFeed) {
  std::vector<uint8_t> stream;
  const std::vector<uint8_t> payload = {9, 8, 7};
  AppendFrame(FrameType::kNnRequest, 7, payload.data(), payload.size(),
              &stream);
  AppendFrame(FrameType::kPing, 8, nullptr, 0, &stream);

  FrameDecoder decoder;
  Frame frame;
  std::vector<Frame> got;
  for (const uint8_t byte : stream) {
    decoder.Feed(&byte, 1);
    while (decoder.Next(&frame) == FrameDecoder::Result::kFrame) {
      got.push_back(frame);
    }
    EXPECT_TRUE(decoder.error().ok());
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].request_id, 7u);
  EXPECT_EQ(got[0].payload, payload);
  EXPECT_EQ(got[1].type, FrameType::kPing);
  EXPECT_TRUE(got[1].payload.empty());
}

TEST(FrameTest, BadMagicLatchesError) {
  std::vector<uint8_t> bytes = EncodeFrame(FrameType::kPing, 1, {});
  bytes[0] ^= 0xff;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  EXPECT_FALSE(decoder.error().ok());
  // Latched: feeding a perfectly valid frame afterwards cannot recover.
  const std::vector<uint8_t> good = EncodeFrame(FrameType::kPing, 2, {});
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
}

TEST(FrameTest, BadVersionLatchesError) {
  std::vector<uint8_t> bytes = EncodeFrame(FrameType::kPing, 1, {});
  bytes[2] = kProtocolVersion + 1;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
}

TEST(FrameTest, OversizedLengthLatchesErrorWithoutBuffering) {
  // Header claims a payload far over the cap; the decoder must reject on
  // the header alone, never waiting for (or allocating) the payload.
  std::vector<uint8_t> bytes = EncodeFrame(FrameType::kPing, 1, {});
  const uint32_t huge = 0x7fffffff;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), kFrameHeaderBytes);
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
}

TEST(FrameTest, HeaderFragmentNeedsMore) {
  const std::vector<uint8_t> bytes = EncodeFrame(FrameType::kPing, 1, {1, 2});
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), kFrameHeaderBytes - 1);
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
  EXPECT_TRUE(decoder.mid_frame());
  decoder.Feed(bytes.data() + kFrameHeaderBytes - 1,
               bytes.size() - (kFrameHeaderBytes - 1));
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_FALSE(decoder.mid_frame());
}

// -- Request payload codecs --------------------------------------------------

TEST(FrameTest, RequestPayloadsRoundTrip) {
  const NnRequest nn{{0.25, 0.75}, 7};
  const auto nn2 = DecodeNnRequest(EncodeNnRequest(nn));
  ASSERT_TRUE(nn2.ok());
  EXPECT_EQ(nn2->q.x, nn.q.x);
  EXPECT_EQ(nn2->q.y, nn.q.y);
  EXPECT_EQ(nn2->k, nn.k);

  const WindowRequest win{{0.5, 0.5}, 0.01, 0.02};
  const auto win2 = DecodeWindowRequest(EncodeWindowRequest(win));
  ASSERT_TRUE(win2.ok());
  EXPECT_EQ(win2->hx, win.hx);
  EXPECT_EQ(win2->hy, win.hy);

  const RangeRequest range{{0.5, 0.5}, 0.03};
  const auto range2 = DecodeRangeRequest(EncodeRangeRequest(range));
  ASSERT_TRUE(range2.ok());
  EXPECT_EQ(range2->radius, range.radius);

  const ServerInfo info{kUnit, 12345, true, {}};
  const auto info2 = DecodeServerInfo(EncodeServerInfo(info));
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ(info2->universe, kUnit);
  EXPECT_EQ(info2->points, 12345u);
  EXPECT_TRUE(info2->cache_enabled);
}

TEST(FrameTest, RequestDecodersRejectBadDomains) {
  // k out of range.
  EXPECT_FALSE(DecodeNnRequest(EncodeNnRequest({{0.5, 0.5}, 0})).ok());
  EXPECT_FALSE(
      DecodeNnRequest(EncodeNnRequest({{0.5, 0.5}, kMaxRequestK + 1})).ok());
  // Non-finite coordinate.
  const double nan = std::nan("");
  EXPECT_FALSE(DecodeNnRequest(EncodeNnRequest({{nan, 0.5}, 1})).ok());
  // Non-positive extents / radius.
  EXPECT_FALSE(
      DecodeWindowRequest(EncodeWindowRequest({{0.5, 0.5}, 0.0, 0.01})).ok());
  EXPECT_FALSE(
      DecodeWindowRequest(EncodeWindowRequest({{0.5, 0.5}, 0.01, -0.01}))
          .ok());
  EXPECT_FALSE(DecodeRangeRequest(EncodeRangeRequest({{0.5, 0.5}, 0.0})).ok());
  // Truncation and trailing bytes.
  std::vector<uint8_t> bytes = EncodeNnRequest({{0.5, 0.5}, 1});
  bytes.pop_back();
  EXPECT_FALSE(DecodeNnRequest(bytes).ok());
  bytes = EncodeRangeRequest({{0.5, 0.5}, 0.1});
  bytes.push_back(0);
  EXPECT_FALSE(DecodeRangeRequest(bytes).ok());
}

TEST(FrameTest, ErrorPayloadRoundTrips) {
  const Status status = Status::InvalidArgument("bad k");
  const Status decoded = DecodeErrorPayload(EncodeErrorPayload(status));
  EXPECT_EQ(decoded, status);
  // Garbage error payloads still decode to a non-OK status.
  EXPECT_FALSE(DecodeErrorPayload({}).ok());
  EXPECT_FALSE(DecodeErrorPayload({0x00}).ok());   // "OK" error
  EXPECT_FALSE(DecodeErrorPayload({0x77, 'x'}).ok());  // unknown code
}

// -- Loopback serving --------------------------------------------------------

// A NetServer running on its own thread, stopped and joined on Finish()
// (or destruction). stats() is only read after the join.
class ServerHarness {
 public:
  ServerHarness(core::WireService* service, const NetOptions& options)
      : net_(service, options) {}

  ~ServerHarness() {
    if (thread_.joinable()) {
      net_.RequestStop();
      thread_.join();
    }
  }

  [[nodiscard]] Status Start() {
    Status status = net_.Listen();
    if (!status.ok()) return status;
    thread_ = std::thread([this] { net_.Run(); });
    return Status::Ok();
  }

  uint16_t port() const { return net_.port(); }

  NetStats Finish(bool drain = false) {
    if (drain) {
      net_.RequestDrain();
    } else {
      net_.RequestStop();
    }
    thread_.join();
    return net_.stats();
  }

 private:
  NetServer net_;
  std::thread thread_;
};

struct ServedDataset {
  explicit ServedDataset(size_t n = 1500, uint64_t seed = 901)
      : dataset(workload::MakeUnitUniform(n, seed)),
        fx(dataset.entries, 64, SmallNodeOptions()),
        server(fx.tree.get(), kUnit) {}

  workload::Dataset dataset;
  TreeFixture fx;
  core::Server server;
};

TEST(NetServerTest, PingAndInfo) {
  ServedDataset served;
  ServerHarness harness(&served.server, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  const auto info = client.Info();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->universe, kUnit);
  EXPECT_EQ(info->points, served.dataset.entries.size());
  EXPECT_FALSE(info->cache_enabled);
  client.Close();

  const NetStats stats = harness.Finish(/*drain=*/true);
  EXPECT_EQ(stats.accepts, 1u);
  EXPECT_EQ(stats.clean_closes, 1u);
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.frames_in, 2u);
  EXPECT_EQ(stats.frames_out, 2u);
}

TEST(NetServerTest, AnswersMatchInProcessWireBytes) {
  ServedDataset served;
  const auto queries = workload::MakeHotspotQueries(kUnit, 60, 4, 903, 0.02);

  // Reference bytes computed before the serving thread exists — the
  // engines share the tree's buffer pool, so no concurrent use.
  std::vector<std::vector<uint8_t>> want_nn, want_window, want_range;
  for (const geo::Point& q : queries) {
    want_nn.push_back(served.server.NnQueryWire(q, 5).value());
    want_window.push_back(served.server.WindowQueryWire(q, 0.01, 0.008).value());
    want_range.push_back(served.server.RangeQueryWire(q, 0.02).value());
  }

  ServerHarness harness(&served.server, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("localhost", harness.port()).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    const geo::Point& q = queries[i];
    const auto nn = client.NnQueryWire(q, 5);
    ASSERT_TRUE(nn.ok()) << nn.status().ToString();
    EXPECT_EQ(*nn, want_nn[i]) << "NN bytes differ at query " << i;
    const auto window = client.WindowQueryWire(q, 0.01, 0.008);
    ASSERT_TRUE(window.ok());
    EXPECT_EQ(*window, want_window[i]);
    const auto range = client.RangeQueryWire(q, 0.02);
    ASSERT_TRUE(range.ok());
    EXPECT_EQ(*range, want_range[i]);
  }
  client.Close();
  const NetStats stats = harness.Finish(/*drain=*/true);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.bad_requests, 0u);
  EXPECT_EQ(stats.query_errors, 0u);
}

TEST(NetServerTest, PipelinedRepliesComeBackInOrder) {
  ServedDataset served;
  const auto queries = workload::MakeHotspotQueries(kUnit, 40, 4, 905, 0.02);
  std::vector<std::vector<uint8_t>> want;
  for (const geo::Point& q : queries) {
    want.push_back(served.server.NnQueryWire(q, 3).value());
  }

  ServerHarness harness(&served.server, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  std::vector<uint32_t> ids;
  for (const geo::Point& q : queries) {
    const auto id = client.SendNn(q, 3);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto reply = client.Receive();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->request_id, ids[i]) << "reply order broke at " << i;
    ASSERT_EQ(reply->type, FrameType::kAnswer);
    EXPECT_EQ(reply->payload, want[i]);
  }
  client.Close();
  harness.Finish(/*drain=*/true);
}

TEST(NetServerTest, CacheOnSingleConnectionMatchesInProcessReplay) {
  // Two identical trees bulk-loaded from the same dataset. The reference
  // server replays the query sequence in process with the cache on; the
  // served tree must return bit-identical bytes per position — cache
  // hits included, because a single pipelined connection fixes the
  // processing order.
  const auto dataset = workload::MakeUnitUniform(1500, 907);
  TreeFixture reference_fx(dataset.entries, 64, SmallNodeOptions());
  core::Server reference(reference_fx.tree.get(), kUnit);
  TreeFixture served_fx(dataset.entries, 64, SmallNodeOptions());
  core::Server served(served_fx.tree.get(), kUnit);

  cache::CacheConfig config;
  config.enabled = true;
  reference.EnableCache(config);
  served.EnableCache(config);

  const auto queries = workload::MakeHotspotQueries(kUnit, 120, 3, 909, 0.01);
  std::vector<std::vector<uint8_t>> want;
  for (const geo::Point& q : queries) {
    want.push_back(reference.NnQueryWire(q, 4).value());
  }
  ASSERT_GT(reference.cache_stats().hits, 0u) << "workload never hit";

  ServerHarness harness(&served, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  for (const geo::Point& q : queries) {
    ASSERT_TRUE(client.SendNn(q, 4).ok());
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto reply = client.Receive();
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, FrameType::kAnswer);
    EXPECT_EQ(reply->payload, want[i]) << "cached bytes differ at " << i;
  }
  client.Close();
  harness.Finish(/*drain=*/true);
  EXPECT_GT(served.cache_stats().hits, 0u);
}

TEST(NetServerTest, BadRequestGetsErrorAndConnectionSurvives) {
  ServedDataset served;
  ServerHarness harness(&served.server, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  // k = 0 is rejected by the payload codec.
  const auto bad_k = client.NnQueryWire({0.5, 0.5}, 0);
  ASSERT_FALSE(bad_k.ok());
  EXPECT_EQ(bad_k.status().code(), StatusCode::kInvalidArgument);
  // Out-of-universe point is rejected by the server before the engine.
  const auto outside = client.NnQueryWire({7.0, 7.0}, 1);
  ASSERT_FALSE(outside.ok());
  EXPECT_EQ(outside.status().code(), StatusCode::kInvalidArgument);
  // The connection is still fully usable.
  const auto good = client.NnQueryWire({0.5, 0.5}, 1);
  EXPECT_TRUE(good.ok());

  client.Close();
  const NetStats stats = harness.Finish(/*drain=*/true);
  EXPECT_EQ(stats.bad_requests, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.clean_closes, 1u);
}

TEST(NetServerTest, ConnectionCapRefusesExtraClients) {
  ServedDataset served;
  NetOptions options;
  options.max_connections = 2;
  ServerHarness harness(&served.server, options);
  ASSERT_TRUE(harness.Start().ok());

  NetClient a, b, c;
  ASSERT_TRUE(a.Connect("127.0.0.1", harness.port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", harness.port()).ok());
  EXPECT_TRUE(a.Ping().ok());
  EXPECT_TRUE(b.Ping().ok());
  // The third connect() succeeds at the TCP level (the listener accepts
  // then immediately closes), but no request ever gets an answer.
  ASSERT_TRUE(c.Connect("127.0.0.1", harness.port()).ok());
  EXPECT_FALSE(c.Ping().ok());

  a.Close();
  b.Close();
  c.Close();
  const NetStats stats = harness.Finish(/*drain=*/true);
  EXPECT_EQ(stats.accepts, 2u);
  EXPECT_EQ(stats.refused, 1u);
}

TEST(NetServerTest, DrainFlushesPendingRepliesBeforeClosing) {
  ServedDataset served;
  ServerHarness harness(&served.server, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.SendPing({static_cast<uint8_t>(i)}).ok());
  }
  // Replies for all ten pings must arrive even though the server starts
  // draining immediately after; then the server closes the connection.
  for (int i = 0; i < 10; ++i) {
    const auto reply = client.Receive();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, FrameType::kPong);
  }
  const NetStats stats = harness.Finish(/*drain=*/true);
  EXPECT_EQ(stats.accepts, 1u);
  EXPECT_EQ(stats.clean_closes + stats.drops, 1u);
  EXPECT_EQ(stats.frames_out, 10u);
}

TEST(NetServerTest, StatsAccountEveryConnection) {
  ServedDataset served;
  ServerHarness harness(&served.server, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());
  for (int i = 0; i < 5; ++i) {
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
    EXPECT_TRUE(client.Ping().ok());
    client.Close();
  }
  const NetStats stats = harness.Finish(/*drain=*/true);
  EXPECT_EQ(stats.accepts, 5u);
  EXPECT_EQ(stats.clean_closes + stats.drops, stats.accepts);
  EXPECT_EQ(stats.drops, 0u);
}

// -- Write-path batching stats -----------------------------------------------

TEST(NetServerTest, StatsAccountWritevBatching) {
  ServedDataset served;
  const auto queries = workload::MakeHotspotQueries(kUnit, 40, 4, 911, 0.02);
  ServerHarness harness(&served.server, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  for (const geo::Point& q : queries) {
    ASSERT_TRUE(client.SendNn(q, 3).ok());
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto reply = client.Receive();
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, FrameType::kAnswer);
    // Small answers must have taken the coalescing path, staying below
    // the zero-copy cutoff.
    EXPECT_LT(reply->payload.size(), kZeroCopyMinBytes);
  }
  client.Close();
  const NetStats stats = harness.Finish(/*drain=*/true);

  EXPECT_EQ(stats.frames_out, queries.size());
  // The gather-write invariants (net_stats.h): every sendmsg submitted
  // at least one iovec, batches never outnumber frames, and after a
  // clean drain every byte out is accounted as copied or zero-copy.
  EXPECT_GE(stats.writev_calls, 1u);
  EXPECT_GE(stats.writev_iovecs, stats.writev_calls);
  EXPECT_LE(stats.writev_calls, stats.frames_out);
  EXPECT_EQ(stats.bytes_out, stats.bytes_copied + stats.bytes_zero_copy);
  EXPECT_EQ(stats.bytes_zero_copy, 0u)
      << "sub-cutoff answers must not take the zero-copy path";
}

TEST(NetServerTest, LargeAnswerServesZeroCopy) {
  ServedDataset served;
  // A range answer listing most of the dataset: comfortably past the
  // zero-copy cutoff yet under the frame payload cap.
  const geo::Point q{0.5, 0.5};
  const double radius = 0.4;
  const std::vector<uint8_t> want =
      served.server.RangeQueryWire(q, radius).value();
  ASSERT_GE(want.size(), kZeroCopyMinBytes);
  ASSERT_LE(want.size(), kMaxPayloadBytes);

  ServerHarness harness(&served.server, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  const auto got = client.RangeQueryWire(q, radius);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, want);
  client.Close();
  const NetStats stats = harness.Finish(/*drain=*/true);

  EXPECT_GE(stats.bytes_zero_copy, want.size())
      << "a large answer must ride the write queue by reference";
  EXPECT_EQ(stats.bytes_out, stats.bytes_copied + stats.bytes_zero_copy);
}

// -- Raw-socket framing differential -----------------------------------------

// A bare blocking TCP socket speaking the protocol by hand, so the test
// can compare the server's reply *stream* byte-for-byte against
// EncodeFrame output instead of trusting a decoder to normalize it.
class RawSocket {
 public:
  ~RawSocket() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return false;
    }
    const int one = 1;
    (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool SendAll(const std::vector<uint8_t>& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool RecvExactly(size_t count, std::vector<uint8_t>* out) {
    out->resize(count);
    size_t got = 0;
    while (got < count) {
      const ssize_t n = ::recv(fd_, out->data() + got, count - got, 0);
      if (n <= 0) return false;
      got += static_cast<size_t>(n);
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

TEST(NetServerTest, CacheHitReplyStreamByteIdenticalToEncodedFrames) {
  // The writev fast path must put exactly the pre-batching framing on
  // the wire: header then payload per reply, replies in request order.
  // Cache on, single pipelined connection — the replay is deterministic
  // (see CacheOnSingleConnectionMatchesInProcessReplay), so the whole
  // reply stream is predictable byte-for-byte, cache hits included.
  const auto dataset = workload::MakeUnitUniform(1500, 917);
  TreeFixture reference_fx(dataset.entries, 64, SmallNodeOptions());
  core::Server reference(reference_fx.tree.get(), kUnit);
  TreeFixture served_fx(dataset.entries, 64, SmallNodeOptions());
  core::Server served(served_fx.tree.get(), kUnit);
  cache::CacheConfig config;
  config.enabled = true;
  reference.EnableCache(config);
  served.EnableCache(config);

  const auto queries = workload::MakeHotspotQueries(kUnit, 120, 3, 919, 0.01);
  std::vector<uint8_t> requests;
  std::vector<uint8_t> want_stream;
  for (size_t i = 0; i < queries.size(); ++i) {
    const uint32_t id = static_cast<uint32_t>(i + 1);
    const std::vector<uint8_t> req = EncodeNnRequest({queries[i], 4});
    AppendFrame(FrameType::kNnRequest, id, req.data(), req.size(), &requests);
    const std::vector<uint8_t> answer =
        reference.NnQueryWire(queries[i], 4).value();
    AppendFrame(FrameType::kAnswer, id, answer.data(), answer.size(),
                &want_stream);
  }
  ASSERT_GT(reference.cache_stats().hits, 0u) << "workload never hit";

  ServerHarness harness(&served, NetOptions{});
  ASSERT_TRUE(harness.Start().ok());
  RawSocket sock;
  ASSERT_TRUE(sock.Connect(harness.port()));
  ASSERT_TRUE(sock.SendAll(requests));
  std::vector<uint8_t> got_stream;
  ASSERT_TRUE(sock.RecvExactly(want_stream.size(), &got_stream));
  EXPECT_EQ(got_stream, want_stream)
      << "reply stream framing diverged from EncodeFrame";
  sock.Close();
  harness.Finish(/*drain=*/true);
  EXPECT_GT(served.cache_stats().hits, 0u);
}

}  // namespace
}  // namespace lbsq::net
