// End-to-end robustness of the serving path over failing storage: the
// production stacking Checksummed(FaultInjecting(base)) under Server and
// BatchServer. The contract: a fault fails (at most) the query it
// touched, transient faults are retried away, and every query the faults
// did not touch produces answers bit-identical to a clean run.

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/batch_server.h"
#include "core/server.h"
#include "core/wire_format.h"
#include "geometry/rect.h"
#include "rtree/rtree.h"
#include "storage/checksummed_page_store.h"
#include "storage/fault_injecting_page_store.h"
#include "storage/page_manager.h"

namespace lbsq {
namespace {

using core::BatchServer;

class FaultInjectionTest : public ::testing::Test {
 protected:
  static constexpr size_t kPoints = 20000;

  // Builds the index through the full stack while faults are disarmed, so
  // every page is stored intact with its checksum stamped.
  void BuildStack(const storage::FaultInjectingPageStore::Options& options) {
    faulty_ = std::make_unique<storage::FaultInjectingPageStore>(&disk_,
                                                                 options);
    store_ = std::make_unique<storage::ChecksummedPageStore>(faulty_.get());
    std::mt19937 rng(17);
    std::uniform_real_distribution<double> coord(0.0, 1.0);
    std::vector<rtree::DataEntry> data;
    data.reserve(kPoints);
    for (size_t i = 0; i < kPoints; ++i) {
      data.push_back({{coord(rng), coord(rng)}, static_cast<uint32_t>(i)});
    }
    tree_ = std::make_unique<rtree::RTree>(store_.get(), 64);
    tree_->BulkLoad(std::move(data));
    tree_->buffer().FlushAll();
  }

  std::vector<BatchServer::NnQuery> MakeNnWorkload(size_t n,
                                                   uint32_t seed) const {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> coord(0.02, 0.98);
    std::uniform_int_distribution<size_t> kdist(1, 8);
    std::vector<BatchServer::NnQuery> queries;
    for (size_t i = 0; i < n; ++i) {
      queries.push_back({{coord(rng), coord(rng)}, kdist(rng)});
    }
    return queries;
  }

  storage::PageManager disk_;
  std::unique_ptr<storage::FaultInjectingPageStore> faulty_;
  std::unique_ptr<storage::ChecksummedPageStore> store_;
  std::unique_ptr<rtree::RTree> tree_;
  geo::Rect universe_{0.0, 0.0, 1.0, 1.0};
};

// The acceptance scenario: a batch over storage where 10% of page reads
// fail must (a) complete, (b) surface per-query errors in the result
// vector and the perf counters, and (c) answer every unaffected query
// bit-identically to a clean run.
TEST_F(FaultInjectionTest, BatchCompletesUnderTenPercentReadFaults) {
  storage::FaultInjectingPageStore::Options options;
  options.seed = 31;
  options.read_fault_probability = 0.10;
  BuildStack(options);

  const auto queries = MakeNnWorkload(300, 37);
  core::BatchServerOptions server_options;
  server_options.num_threads = 4;
  // Unbuffered NN traversals touch many pages, so at a 10% per-read
  // fault rate a single attempt almost always hits a fault; the default
  // retry budget leaves a measurable chance that *every* query in the
  // batch exhausts its retries (observed ~1 in 4 runs on a loaded
  // 1-core host), which is the one outcome the final assertion rejects.
  // A deeper budget keeps the scenario identical but makes "at least
  // one query survives" a statistical certainty.
  server_options.max_query_retries = 6;
  BatchServer server(store_.get(), tree_->meta(), universe_, server_options);

  // Clean reference run through the same server.
  const auto clean = server.NnQueryBatchChecked(queries);
  std::vector<std::vector<uint8_t>> clean_bytes;
  for (const auto& r : clean) {
    ASSERT_TRUE(r.ok());
    clean_bytes.push_back(core::wire::EncodeNnResult(r.value()).value());
  }
  server.ResetPerfStats();

  faulty_->arm();
  const auto faulted = server.NnQueryBatchChecked(queries);
  faulty_->disarm();

  ASSERT_EQ(faulted.size(), queries.size());  // the batch completed
  EXPECT_GT(faulty_->injected_read_faults(), 0u);

  size_t errors = 0;
  for (size_t i = 0; i < faulted.size(); ++i) {
    if (faulted[i].ok()) {
      // Unaffected (or successfully retried) query: bit-identical answer.
      EXPECT_EQ(core::wire::EncodeNnResult(faulted[i].value()).value(),
                clean_bytes[i])
          << "query " << i;
    } else {
      ++errors;
      EXPECT_EQ(faulted[i].status().code(), StatusCode::kUnavailable);
    }
  }
  const auto stats = server.perf_stats();
  EXPECT_EQ(stats.query_errors, errors);
  // At a 10% per-read fault rate, multi-page traversals retry often.
  EXPECT_GT(stats.query_retries, 0u);
  // Retries must rescue a decent share: not every query errors out.
  EXPECT_LT(errors, faulted.size());
}

// Same scenario with silent corruption instead of hard read failures:
// the checksum layer converts flipped bits into kDataLoss errors — a
// wrong answer is never served as OK.
TEST_F(FaultInjectionTest, CorruptionYieldsDataLossNeverWrongAnswers) {
  storage::FaultInjectingPageStore::Options options;
  options.seed = 41;
  options.read_corruption_probability = 0.05;
  BuildStack(options);

  const auto queries = MakeNnWorkload(200, 43);
  core::BatchServerOptions server_options;
  server_options.num_threads = 4;
  BatchServer server(store_.get(), tree_->meta(), universe_, server_options);

  const auto clean = server.NnQueryBatchChecked(queries);
  faulty_->arm();
  const auto faulted = server.NnQueryBatchChecked(queries);
  faulty_->disarm();

  EXPECT_GT(faulty_->injected_corruptions(), 0u);
  EXPECT_GT(store_->verification_failures(), 0u);
  size_t errors = 0;
  for (size_t i = 0; i < faulted.size(); ++i) {
    if (!faulted[i].ok()) {
      ++errors;
      EXPECT_EQ(faulted[i].status().code(), StatusCode::kDataLoss);
      continue;
    }
    ASSERT_TRUE(clean[i].ok());
    EXPECT_EQ(core::wire::EncodeNnResult(faulted[i].value()).value(),
              core::wire::EncodeNnResult(clean[i].value()).value())
        << "query " << i;
  }
  EXPECT_GT(errors, 0u);
  EXPECT_LT(errors, faulted.size());
}

// The single-threaded Server's checked path: retries absorb a modest
// transient fault rate entirely, and the retry counter shows they ran.
TEST_F(FaultInjectionTest, ServerRetriesAbsorbTransientFaults) {
  storage::FaultInjectingPageStore::Options options;
  options.seed = 53;
  options.read_fault_probability = 0.02;
  BuildStack(options);

  core::Server server(tree_.get(), universe_);
  server.set_max_query_retries(8);
  const auto queries = MakeNnWorkload(120, 59);

  // Clean reference answers.
  std::vector<std::vector<uint8_t>> clean_bytes;
  for (const auto& q : queries) {
    clean_bytes.push_back(
        core::wire::EncodeNnResult(server.NnQuery(q.q, q.k)).value());
  }

  faulty_->arm();
  size_t ok = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto result = server.NnQueryChecked(queries[i].q, queries[i].k);
    if (result.ok()) {
      ++ok;
      EXPECT_EQ(core::wire::EncodeNnResult(result.value()).value(),
                clean_bytes[i]);
    } else {
      EXPECT_TRUE(IsRetryable(result.status()));
    }
  }
  faulty_->disarm();

  EXPECT_GT(server.query_retries(), 0u);
  // With a generous retry budget at a 2% fault rate, nearly everything
  // (and usually everything) succeeds.
  EXPECT_GT(ok, queries.size() * 3 / 4);
  EXPECT_EQ(server.query_errors(), queries.size() - ok);
}

// Window and range checked batches degrade the same way as NN.
TEST_F(FaultInjectionTest, AllQueryKindsDegradeGracefully) {
  storage::FaultInjectingPageStore::Options options;
  options.seed = 61;
  options.read_fault_probability = 0.10;
  BuildStack(options);

  std::mt19937 rng(67);
  std::uniform_real_distribution<double> coord(0.05, 0.95);
  std::vector<BatchServer::WindowQuery> window;
  std::vector<BatchServer::RangeQuery> range;
  for (int i = 0; i < 120; ++i) {
    window.push_back({{coord(rng), coord(rng)}, 0.01, 0.015});
    range.push_back({{coord(rng), coord(rng)}, 0.012});
  }

  core::BatchServerOptions server_options;
  server_options.num_threads = 3;
  BatchServer server(store_.get(), tree_->meta(), universe_, server_options);
  const auto clean_window = server.WindowQueryBatchChecked(window);
  const auto clean_range = server.RangeQueryBatchChecked(range);

  faulty_->arm();
  const auto faulted_window = server.WindowQueryBatchChecked(window);
  const auto faulted_range = server.RangeQueryBatchChecked(range);
  faulty_->disarm();

  ASSERT_EQ(faulted_window.size(), window.size());
  ASSERT_EQ(faulted_range.size(), range.size());
  for (size_t i = 0; i < window.size(); ++i) {
    if (!faulted_window[i].ok()) continue;
    ASSERT_TRUE(clean_window[i].ok());
    EXPECT_EQ(
        core::wire::EncodeWindowResult(faulted_window[i].value()).value(),
        core::wire::EncodeWindowResult(clean_window[i].value()).value());
  }
  for (size_t i = 0; i < range.size(); ++i) {
    if (!faulted_range[i].ok()) continue;
    ASSERT_TRUE(clean_range[i].ok());
    EXPECT_EQ(core::wire::EncodeRangeResult(faulted_range[i].value()).value(),
              core::wire::EncodeRangeResult(clean_range[i].value()).value());
  }
}

}  // namespace
}  // namespace lbsq
