#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtree/knn.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"
#include "workload/datasets.h"

namespace lbsq::rtree {
namespace {

using test::BruteForceKnn;
using test::BruteForceWindow;
using test::Ids;
using test::SmallNodeOptions;
using test::TreeFixture;
using workload::MakeUnitUniform;

// ---------------------------------------------------------------------------
// Node serialization
// ---------------------------------------------------------------------------

TEST(NodeTest, LeafSerializationRoundTrip) {
  Node node;
  node.level = 0;
  for (uint32_t i = 0; i < kLeafCapacity; ++i) {
    node.data.push_back({{static_cast<double>(i), -0.5 * i}, i * 3});
  }
  storage::Page page;
  node.SerializeTo(&page);
  const Node back = Node::DeserializeFrom(page);
  ASSERT_EQ(back.level, 0);
  ASSERT_EQ(back.data.size(), node.data.size());
  for (size_t i = 0; i < node.data.size(); ++i) {
    EXPECT_EQ(back.data[i].point, node.data[i].point);
    EXPECT_EQ(back.data[i].id, node.data[i].id);
  }
}

TEST(NodeTest, InternalSerializationRoundTrip) {
  Node node;
  node.level = 3;
  for (uint32_t i = 0; i < kInternalCapacity; ++i) {
    node.children.push_back(
        {geo::Rect(i, i, i + 1.0, i + 2.0), i + 100});
  }
  storage::Page page;
  node.SerializeTo(&page);
  const Node back = Node::DeserializeFrom(page);
  ASSERT_EQ(back.level, 3);
  ASSERT_EQ(back.children.size(), node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    EXPECT_EQ(back.children[i].mbr, node.children[i].mbr);
    EXPECT_EQ(back.children[i].child, node.children[i].child);
  }
}

TEST(NodeTest, CapacitiesMatchPaperLayout) {
  EXPECT_EQ(kLeafCapacity, 204u);
  EXPECT_EQ(kDataEntrySize, 20u);
  EXPECT_GE(kInternalCapacity, 100u);
}

// ---------------------------------------------------------------------------
// Construction: insert, bulk load, invariants
// ---------------------------------------------------------------------------

TEST(RTreeTest, InsertThenQuerySmall) {
  storage::PageManager disk;
  RTree tree(&disk, 16, SmallNodeOptions());
  const auto dataset = MakeUnitUniform(500, 11);
  for (const DataEntry& e : dataset.entries) tree.Insert(e.point, e.id);
  EXPECT_EQ(tree.size(), 500u);
  tree.CheckInvariants();
  EXPECT_GT(tree.height(), 1);

  std::vector<DataEntry> out;
  tree.WindowQuery(geo::Rect(0.2, 0.2, 0.5, 0.6), &out);
  std::sort(out.begin(), out.end(),
            [](const DataEntry& a, const DataEntry& b) { return a.id < b.id; });
  const auto expected =
      BruteForceWindow(dataset.entries, geo::Rect(0.2, 0.2, 0.5, 0.6));
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, expected[i].id);
  }
}

TEST(RTreeTest, BulkLoadMatchesBruteForce) {
  const auto dataset = MakeUnitUniform(5000, 23);
  TreeFixture fx(dataset.entries);
  fx.tree->CheckInvariants();
  EXPECT_EQ(fx.tree->size(), 5000u);

  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.Uniform(0, 0.9);
    const double y = rng.Uniform(0, 0.9);
    const geo::Rect w(x, y, x + rng.Uniform(0.01, 0.2),
                      y + rng.Uniform(0.01, 0.2));
    std::vector<DataEntry> out;
    fx.tree->WindowQuery(w, &out);
    EXPECT_EQ(Ids(out), Ids(BruteForceWindow(dataset.entries, w)));
  }
}

TEST(RTreeTest, BulkLoadEmptyAndSingle) {
  storage::PageManager disk;
  RTree tree(&disk, 4);
  tree.BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  std::vector<DataEntry> out;
  tree.WindowQuery(geo::Rect(0, 0, 1, 1), &out);
  EXPECT_TRUE(out.empty());

  storage::PageManager disk2;
  RTree tree2(&disk2, 4);
  tree2.BulkLoad({{{0.5, 0.5}, 7}});
  tree2.WindowQuery(geo::Rect(0, 0, 1, 1), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 7u);
  tree2.CheckInvariants();
}

TEST(RTreeTest, InsertTriggersReinsertAndSplitKeepingInvariants) {
  storage::PageManager disk;
  RTree::Options options = SmallNodeOptions();
  RTree tree(&disk, 16, options);
  // Clustered insert order stresses forced reinsertion.
  const auto dataset = workload::MakeClustered(
      800, geo::Rect(0, 0, 1, 1), 10, 1.1, 0.01, 0.05, 0.1, 31);
  for (const DataEntry& e : dataset.entries) {
    tree.Insert(e.point, e.id);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 800u);
  std::vector<DataEntry> all;
  tree.WindowQuery(geo::Rect(0, 0, 1, 1), &all);
  EXPECT_EQ(all.size(), 800u);
}

TEST(RTreeTest, MixedInsertAfterBulkLoad) {
  const auto dataset = MakeUnitUniform(1000, 5);
  TreeFixture fx(dataset.entries, 32, SmallNodeOptions());
  const auto extra = MakeUnitUniform(300, 6);
  std::vector<DataEntry> reference = dataset.entries;
  for (const DataEntry& e : extra.entries) {
    fx.tree->Insert(e.point, e.id + 10000);
    reference.push_back({e.point, e.id + 10000});
  }
  fx.tree->CheckInvariants();
  EXPECT_EQ(fx.tree->size(), 1300u);
  const geo::Rect w(0.1, 0.3, 0.6, 0.7);
  std::vector<DataEntry> out;
  fx.tree->WindowQuery(w, &out);
  EXPECT_EQ(Ids(out), Ids(BruteForceWindow(reference, w)));
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

TEST(RTreeTest, DeleteRemovesOnlyTarget) {
  const auto dataset = MakeUnitUniform(400, 17);
  TreeFixture fx(dataset.entries, 32, SmallNodeOptions());
  // Delete every third point.
  std::vector<DataEntry> remaining;
  for (const DataEntry& e : dataset.entries) {
    if (e.id % 3 == 0) {
      EXPECT_TRUE(fx.tree->Delete(e.point, e.id));
    } else {
      remaining.push_back(e);
    }
  }
  fx.tree->CheckInvariants();
  EXPECT_EQ(fx.tree->size(), remaining.size());
  std::vector<DataEntry> out;
  fx.tree->WindowQuery(geo::Rect(0, 0, 1, 1), &out);
  EXPECT_EQ(Ids(out), Ids(remaining));
}

TEST(RTreeTest, DeleteMissingReturnsFalse) {
  const auto dataset = MakeUnitUniform(100, 19);
  TreeFixture fx(dataset.entries, 8, SmallNodeOptions());
  EXPECT_FALSE(fx.tree->Delete({2.0, 2.0}, 1));     // point not present
  EXPECT_FALSE(fx.tree->Delete(dataset.entries[0].point, 999999));  // id wrong
  EXPECT_EQ(fx.tree->size(), 100u);
}

TEST(RTreeTest, DeleteEverythingThenReinsert) {
  const auto dataset = MakeUnitUniform(250, 29);
  TreeFixture fx(dataset.entries, 16, SmallNodeOptions());
  for (const DataEntry& e : dataset.entries) {
    ASSERT_TRUE(fx.tree->Delete(e.point, e.id));
  }
  EXPECT_EQ(fx.tree->size(), 0u);
  fx.tree->CheckInvariants();
  for (const DataEntry& e : dataset.entries) fx.tree->Insert(e.point, e.id);
  EXPECT_EQ(fx.tree->size(), 250u);
  fx.tree->CheckInvariants();
}

// ---------------------------------------------------------------------------
// k-NN algorithms vs brute force (property sweep)
// ---------------------------------------------------------------------------

struct KnnCase {
  size_t n;
  size_t k;
  uint64_t seed;
};

class KnnParamTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(KnnParamTest, BothAlgorithmsMatchBruteForce) {
  const KnnCase param = GetParam();
  const auto dataset = MakeUnitUniform(param.n, param.seed);
  TreeFixture fx(dataset.entries, 32, SmallNodeOptions());

  Rng rng(param.seed ^ 0xabcdef);
  for (int i = 0; i < 25; ++i) {
    const geo::Point q{rng.NextDouble(), rng.NextDouble()};
    const auto expected = BruteForceKnn(dataset.entries, q, param.k);
    const auto df = KnnDepthFirst(*fx.tree, q, param.k);
    const auto bf = KnnBestFirst(*fx.tree, q, param.k);
    ASSERT_EQ(df.size(), expected.size());
    ASSERT_EQ(bf.size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(df[j].entry.id, expected[j].entry.id) << "DF rank " << j;
      EXPECT_EQ(bf[j].entry.id, expected[j].entry.id) << "BF rank " << j;
      EXPECT_DOUBLE_EQ(df[j].distance, expected[j].distance);
      EXPECT_DOUBLE_EQ(bf[j].distance, expected[j].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnParamTest,
    ::testing::Values(KnnCase{1, 1, 1}, KnnCase{10, 3, 2}, KnnCase{100, 1, 3},
                      KnnCase{500, 10, 4}, KnnCase{2000, 1, 5},
                      KnnCase{2000, 50, 6}, KnnCase{2000, 100, 7},
                      KnnCase{300, 300, 8},   // k == n
                      KnnCase{300, 400, 9})); // k > n

TEST(KnnTest, BestFirstNeverReadsMoreNodesThanDepthFirst) {
  const auto dataset = MakeUnitUniform(3000, 77);
  TreeFixture fx(dataset.entries, 0, SmallNodeOptions());
  Rng rng(123);
  uint64_t df_total = 0;
  uint64_t bf_total = 0;
  for (int i = 0; i < 20; ++i) {
    const geo::Point q{rng.NextDouble(), rng.NextDouble()};
    fx.tree->buffer().ResetCounters();
    KnnDepthFirst(*fx.tree, q, 10);
    df_total += fx.tree->buffer().logical_accesses();
    fx.tree->buffer().ResetCounters();
    KnnBestFirst(*fx.tree, q, 10);
    bf_total += fx.tree->buffer().logical_accesses();
  }
  // HS99 is I/O-optimal: on aggregate it cannot lose to depth-first.
  EXPECT_LE(bf_total, df_total);
}

TEST(KnnTest, EmptyTreeReturnsNothing) {
  storage::PageManager disk;
  RTree tree(&disk, 4);
  EXPECT_TRUE(KnnBestFirst(tree, {0.5, 0.5}, 3).empty());
  EXPECT_TRUE(KnnDepthFirst(tree, {0.5, 0.5}, 3).empty());
}

// ---------------------------------------------------------------------------
// Cost accounting
// ---------------------------------------------------------------------------

TEST(RTreeTest, BufferReducesPageAccesses) {
  const auto dataset = MakeUnitUniform(20000, 47);
  TreeFixture fx(dataset.entries, 0);
  fx.tree->SetBufferFraction(0.1);
  fx.tree->disk().ResetCounters();
  fx.tree->buffer().ResetCounters();

  // Repeated queries in the same area should mostly hit the buffer.
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    std::vector<DataEntry> out;
    const double x = 0.4 + rng.Uniform(0, 0.05);
    const double y = 0.4 + rng.Uniform(0, 0.05);
    fx.tree->WindowQuery(geo::Rect(x, y, x + 0.02, y + 0.02), &out);
  }
  const uint64_t na = fx.tree->buffer().logical_accesses();
  const uint64_t pa = fx.tree->disk().read_count();
  EXPECT_LT(pa, na / 5);  // most accesses served from the buffer
}

}  // namespace
}  // namespace lbsq::rtree
