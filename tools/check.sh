#!/usr/bin/env bash
# Full local verification matrix for lbsq. Runs every configuration a
# change must survive before it ships, prints one PASS/FAIL line per
# stage, and exits nonzero if any stage failed. Stages:
#
#   lint    tools/lbsq_lint over the whole tree (tier-1 invariants);
#           also writes the machine-readable findings artifact
#           LINT_findings.json next to the BENCH_*.json artifacts
#   plain   default build + full ctest suite
#   werror  -Wall -Wextra -Wshadow -Werror build (warnings are errors;
#           catches dropped [[nodiscard]] Status/StatusOr results)
#   werror-thread-safety  clang -Wthread-safety -Werror build proving
#           the annotations in src/common/annotations.h; PASS-skips
#           when no clang++ is on the box (lbsq_lint's guarded-access
#           rule remains the everywhere gate)
#   asan    ASan+UBSan build + full ctest suite
#   tsan    TSan build + the threaded suites (BatchServer incl. the
#           cache-enabled wire batches, the shared semantic cache, fault
#           injection, the net and push suites whose event loop runs on
#           its own thread, and the partition suite's concurrent
#           routing-table readers) — the rest are single-threaded and
#           add nothing
#   bench-smoke  micro + net_loadgen + the partition K-sweep +
#           push_loadgen at tiny sizes; fails on crash, a failed reply
#           verification (incl. push_loadgen's zero-answer-gap check),
#           or a missing/malformed BENCH_*.json artifact (the numbers
#           themselves are not gated here — a smoke box is too noisy
#           for thresholds)
#   bench-gate   micro BM_KnnBestFirst/100 + the window/range validity
#           engine micros, churn, a quarter-scale
#           net_loadgen and a quarter-scale throughput (batch-server
#           q/s) compared against bench/baseline.json via
#           tools/bench_gate.py; the baseline's bands are generous
#           multiples so only a real regression trips them
#
# Build directories are reused across runs (build/, build-werror/,
# build-asan/, build-tsan/), so incremental invocations are cheap.
# Usage: tools/check.sh [stage ...]   (default: all stages)

set -u
cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 1)"

STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(lint plain werror werror-thread-safety \
  asan tsan bench-smoke bench-gate)

declare -A RESULT
FAILED=0

note() { printf '\n== %s ==\n' "$*"; }

run_stage() {
  local name="$1"
  shift
  note "stage: $name"
  if "$@"; then
    RESULT[$name]=PASS
  else
    RESULT[$name]=FAIL
    FAILED=1
  fi
}

stage_lint() {
  cmake -S "$ROOT" -B "$ROOT/build" >/dev/null &&
    cmake --build "$ROOT/build" --target lbsq_lint -j "$JOBS" &&
    "$ROOT/build/tools/lbsq_lint" --root "$ROOT" \
      --json "$ROOT/LINT_findings.json"
}

# Opportunistic clang proof of the thread-safety annotations. On a box
# without clang++ this PASSes as an explicit skip: the contract is still
# enforced by lbsq_lint's flow-sensitive rules on every run, clang just
# proves it with a real compiler analysis when available.
stage_werror_thread_safety() {
  local clangxx
  clangxx="$(command -v clang++ || true)"
  if [ -z "$clangxx" ]; then
    echo "no clang++ on this box; skipping (lbsq_lint guarded-access still gates)"
    return 0
  fi
  cmake -S "$ROOT" -B "$ROOT/build-clang-ts" \
    -DCMAKE_CXX_COMPILER="$clangxx" -DLBSQ_WERROR=ON \
    -DLBSQ_THREAD_SAFETY=ON >/dev/null &&
    cmake --build "$ROOT/build-clang-ts" -j "$JOBS"
}

stage_plain() {
  cmake -S "$ROOT" -B "$ROOT/build" >/dev/null &&
    cmake --build "$ROOT/build" -j "$JOBS" &&
    ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"
}

stage_werror() {
  cmake -S "$ROOT" -B "$ROOT/build-werror" -DLBSQ_WERROR=ON >/dev/null &&
    cmake --build "$ROOT/build-werror" -j "$JOBS"
}

stage_asan() {
  cmake -S "$ROOT" -B "$ROOT/build-asan" -DLBSQ_SANITIZE=address >/dev/null &&
    cmake --build "$ROOT/build-asan" -j "$JOBS" &&
    ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS"
}

stage_tsan() {
  cmake -S "$ROOT" -B "$ROOT/build-tsan" -DLBSQ_SANITIZE=thread >/dev/null &&
    cmake --build "$ROOT/build-tsan" --target batch_server_test \
      fault_injection_test semantic_cache_test net_test net_fault_test \
      push_test partition_test -j "$JOBS" &&
    "$ROOT/build-tsan/tests/batch_server_test" &&
    "$ROOT/build-tsan/tests/fault_injection_test" &&
    "$ROOT/build-tsan/tests/semantic_cache_test" &&
    "$ROOT/build-tsan/tests/net_test" &&
    "$ROOT/build-tsan/tests/net_fault_test" &&
    "$ROOT/build-tsan/tests/push_test" &&
    "$ROOT/build-tsan/tests/partition_test"
}

stage_bench_smoke() {
  cmake -S "$ROOT" -B "$ROOT/build" >/dev/null &&
    cmake --build "$ROOT/build" --target micro net_loadgen partition \
      push_loadgen -j "$JOBS" || return 1
  local dir
  dir="$(mktemp -d)" || return 1
  local ok=0
  # One fast micro benchmark (min-of-rounds still applies), the loadgen,
  # the K-fragment sweep and the push-vs-pull trajectory walk at small
  # datasets — the loadgen's reply verification, the partition
  # differential tests and the push walk's zero-answer-gap check are the
  # correctness gates; artifacts must exist and parse.
  LBSQ_BENCH_DIR="$dir" "$ROOT/build/bench/micro" \
    '--benchmark_filter=BM_KnnBestFirst/10/' >/dev/null &&
    LBSQ_BENCH_DIR="$dir" LBSQ_SCALE=0.05 "$ROOT/build/bench/net_loadgen" \
      >/dev/null &&
    LBSQ_BENCH_DIR="$dir" LBSQ_SCALE=0.05 LBSQ_ROUNDS=1 \
      "$ROOT/build/bench/partition" >/dev/null &&
    LBSQ_BENCH_DIR="$dir" LBSQ_SCALE=0.05 "$ROOT/build/bench/push_loadgen" \
      >/dev/null &&
    python3 -m json.tool "$dir/BENCH_micro.json" >/dev/null &&
    python3 -m json.tool "$dir/BENCH_net_loadgen.json" >/dev/null &&
    python3 -m json.tool "$dir/BENCH_partition.json" >/dev/null &&
    python3 -m json.tool "$dir/BENCH_push.json" >/dev/null ||
    ok=1
  rm -rf "$dir"
  return "$ok"
}

# Re-runs the three gated benchmarks at the baseline's own
# configuration and compares the numbers against bench/baseline.json.
# Hit rates are deterministic; timing bands are generous multiples.
stage_bench_gate() {
  cmake -S "$ROOT" -B "$ROOT/build" >/dev/null &&
    cmake --build "$ROOT/build" --target micro churn net_loadgen \
      throughput -j "$JOBS" || return 1
  local dir
  dir="$(mktemp -d)" || return 1
  local ok=0
  LBSQ_BENCH_DIR="$dir" "$ROOT/build/bench/micro" \
    '--benchmark_filter=BM_KnnBestFirst/100/|BM_WindowValidityQuery|BM_RangeValidityQuery' \
    >/dev/null &&
    LBSQ_BENCH_DIR="$dir" LBSQ_ROUNDS=1 "$ROOT/build/bench/churn" \
      >/dev/null &&
    LBSQ_BENCH_DIR="$dir" LBSQ_SCALE=0.25 "$ROOT/build/bench/net_loadgen" \
      >/dev/null &&
    LBSQ_BENCH_DIR="$dir" LBSQ_SCALE=0.25 "$ROOT/build/bench/throughput" \
      >/dev/null &&
    python3 "$ROOT/tools/bench_gate.py" "$dir" "$ROOT/bench/baseline.json" ||
    ok=1
  rm -rf "$dir"
  return "$ok"
}

for s in "${STAGES[@]}"; do
  case "$s" in
    lint | plain | werror | asan | tsan) run_stage "$s" "stage_$s" ;;
    werror-thread-safety) run_stage "$s" stage_werror_thread_safety ;;
    bench-smoke) run_stage "$s" stage_bench_smoke ;;
    bench-gate) run_stage "$s" stage_bench_gate ;;
    *)
      echo "unknown stage: $s (known: lint plain werror" \
        "werror-thread-safety asan tsan bench-smoke bench-gate)" >&2
      exit 2
      ;;
  esac
done

printf '\n== summary ==\n'
for s in "${STAGES[@]}"; do
  printf '%-20s %s\n' "$s" "${RESULT[$s]}"
done
exit "$FAILED"
