#!/usr/bin/env bash
# Full local verification matrix for lbsq. Runs every configuration a
# change must survive before it ships, prints one PASS/FAIL line per
# stage, and exits nonzero if any stage failed. Stages:
#
#   lint    tools/lbsq_lint over the whole tree (tier-1 invariants)
#   plain   default build + full ctest suite
#   werror  -Wall -Wextra -Wshadow -Werror build (warnings are errors;
#           catches dropped [[nodiscard]] Status/StatusOr results)
#   asan    ASan+UBSan build + full ctest suite
#   tsan    TSan build + the threaded suites (BatchServer incl. the
#           cache-enabled wire batches, the shared semantic cache, fault
#           injection, and the net suites whose event loop runs on its
#           own thread) — the rest are single-threaded and add nothing
#
# Build directories are reused across runs (build/, build-werror/,
# build-asan/, build-tsan/), so incremental invocations are cheap.
# Usage: tools/check.sh [stage ...]   (default: all stages)

set -u
cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 1)"

STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(lint plain werror asan tsan)

declare -A RESULT
FAILED=0

note() { printf '\n== %s ==\n' "$*"; }

run_stage() {
  local name="$1"
  shift
  note "stage: $name"
  if "$@"; then
    RESULT[$name]=PASS
  else
    RESULT[$name]=FAIL
    FAILED=1
  fi
}

stage_lint() {
  cmake -S "$ROOT" -B "$ROOT/build" >/dev/null &&
    cmake --build "$ROOT/build" --target lbsq_lint -j "$JOBS" &&
    "$ROOT/build/tools/lbsq_lint" --root "$ROOT"
}

stage_plain() {
  cmake -S "$ROOT" -B "$ROOT/build" >/dev/null &&
    cmake --build "$ROOT/build" -j "$JOBS" &&
    ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"
}

stage_werror() {
  cmake -S "$ROOT" -B "$ROOT/build-werror" -DLBSQ_WERROR=ON >/dev/null &&
    cmake --build "$ROOT/build-werror" -j "$JOBS"
}

stage_asan() {
  cmake -S "$ROOT" -B "$ROOT/build-asan" -DLBSQ_SANITIZE=address >/dev/null &&
    cmake --build "$ROOT/build-asan" -j "$JOBS" &&
    ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS"
}

stage_tsan() {
  cmake -S "$ROOT" -B "$ROOT/build-tsan" -DLBSQ_SANITIZE=thread >/dev/null &&
    cmake --build "$ROOT/build-tsan" --target batch_server_test \
      fault_injection_test semantic_cache_test net_test net_fault_test \
      -j "$JOBS" &&
    "$ROOT/build-tsan/tests/batch_server_test" &&
    "$ROOT/build-tsan/tests/fault_injection_test" &&
    "$ROOT/build-tsan/tests/semantic_cache_test" &&
    "$ROOT/build-tsan/tests/net_test" &&
    "$ROOT/build-tsan/tests/net_fault_test"
}

for s in "${STAGES[@]}"; do
  case "$s" in
    lint | plain | werror | asan | tsan) run_stage "$s" "stage_$s" ;;
    *)
      echo "unknown stage: $s (known: lint plain werror asan tsan)" >&2
      exit 2
      ;;
  esac
done

printf '\n== summary ==\n'
for s in "${STAGES[@]}"; do
  printf '%-8s %s\n' "$s" "${RESULT[$s]}"
done
exit "$FAILED"
