#!/usr/bin/env python3
"""Compare fresh BENCH_*.json artifacts against bench/baseline.json.

Usage: bench_gate.py <artifact_dir> <baseline_json>

Reads the artifacts the bench-gate stage of tools/check.sh just
produced (BENCH_micro.json, BENCH_churn.json, BENCH_net_loadgen.json,
BENCH_throughput.json) and checks each gated number against its band
in the baseline file:

  knn_best_first_100   micro's min-of-repeats BM_KnnBestFirst/100 time
                       must stay under min_ns * max_ratio
  window_validity_query / range_validity_query
                       same band shape for the full window/range
                       validity-region engine queries (min-of-repeats)
  net_cache_qps        the loadgen's cache-on end-to-end q/s must stay
                       above value * min_ratio
  batch4_qps           the 4-worker BatchServer's end-to-end q/s at the
                       gate's quarter scale must stay above
                       value * min_ratio (ROADMAP perf-gating item; the
                       band is wide because 4 workers share 1 vcpu on
                       the reference box)
  churn_*_hit_at_100   at 100 updates per 1k queries the region-scoped
                       cache must keep a hit rate above `min`, and the
                       epoch-nuke twin must stay below `max` (if the
                       nuke path ever stops collapsing there, the
                       workload no longer exercises the difference and
                       the gate is meaningless)

Exits nonzero listing every violated band. Timing bands are generous
multiples (see the baseline's comment); hit rates are deterministic.
"""

import json
import sys


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    art_dir, baseline_path = sys.argv[1], sys.argv[2]
    with open(baseline_path) as f:
        base = json.load(f)
    failures = []

    def check(label, ok, detail):
        print(f"bench-gate: {label}: {detail} [{'ok' if ok else 'FAIL'}]")
        if not ok:
            failures.append(label)

    with open(f"{art_dir}/BENCH_micro.json") as f:
        micro = json.load(f)

    def micro_min(prefix):
        result = None
        for b in micro["benchmarks"]:
            if (b["name"].startswith(prefix)
                    and b.get("aggregate_name") == "min"):
                result = b["real_time"]
        return result

    def check_micro(label, prefix):
        spec = base[label]
        limit = spec["min_ns"] * spec["max_ratio"]
        t = micro_min(prefix)
        check(label, t is not None and t <= limit,
              f"min {t if t is None else round(t)} ns, "
              f"limit {round(limit)} ns")

    check_micro("knn_best_first_100", "BM_KnnBestFirst/100/")
    check_micro("window_validity_query", "BM_WindowValidityQuery/")
    check_micro("range_validity_query", "BM_RangeValidityQuery/")

    with open(f"{art_dir}/BENCH_net_loadgen.json") as f:
        loadgen = json.load(f)
    spec = base["net_cache_qps"]
    floor = spec["value"] * spec["min_ratio"]
    qps = loadgen["net_cache_qps"]
    check("net_cache_qps", qps >= floor,
          f"{round(qps)} q/s, floor {round(floor)} q/s")

    with open(f"{art_dir}/BENCH_throughput.json") as f:
        throughput = json.load(f)
    spec = base["batch4_qps"]
    floor = spec["value"] * spec["min_ratio"]
    qps = throughput["batch4_qps"]
    check("batch4_qps", qps >= floor,
          f"{round(qps)} q/s, floor {round(floor)} q/s")

    with open(f"{art_dir}/BENCH_churn.json") as f:
        churn = json.load(f)
    row = next((s for s in churn["series"]
                if s["updates_per_kquery"] == 100), None)
    if row is None:
        check("churn_series", False, "no updates_per_kquery=100 row")
    else:
        region = row["region"]["hit_rate"]
        epoch = row["epoch"]["hit_rate"]
        check("churn_region_hit_at_100",
              region >= base["churn_region_hit_at_100"]["min"],
              f"{region:.4f}, floor "
              f"{base['churn_region_hit_at_100']['min']:.2f}")
        check("churn_epoch_hit_at_100",
              epoch <= base["churn_epoch_hit_at_100"]["max"],
              f"{epoch:.4f}, cap "
              f"{base['churn_epoch_hit_at_100']['max']:.2f}")

    if failures:
        print(f"bench-gate: FAILED: {', '.join(failures)}")
        return 1
    print("bench-gate: all bands hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
