// lbsq_lint — project-specific static checker for the lbsq tree.
//
// This box builds with g++ only (no clang-tidy, no cppcheck), so the
// invariants the codebase promises in prose — the abort/Status boundary
// of DESIGN.md §7, the BatchServer locking discipline, deterministic
// experiments — are enforced here, by a comment/string-aware lexer over
// the sources (no full C++ parse; the rules are chosen so token-level
// analysis is sound for this codebase's style).
//
// Rules (see --list-rules and DESIGN.md "Static analysis layer"):
//   check-in-decode-surface  no aborting construct in hostile-input code
//   guarded-by               mutex-owning classes annotate every member
//   determinism              no nondeterministic randomness sources
//   banned-function          sprintf/strtok/atof/... are off limits
//   naked-new-delete         ownership goes through smart pointers
//   header-guard             every header has a guard or #pragma once
//   using-namespace-header   no `using namespace` in headers
//
// Escape hatches:
//   // lint: allow(rule-id)   suppresses `rule-id` on this line and the
//                             next (so a pragma may sit on its own line
//                             above a long statement).
//   // lint: surface(decode)  marks the whole file as a hostile-input
//                             decode surface (used by future surfaces
//                             and the fixture self-tests; the two known
//                             production surfaces are also hardwired by
//                             path so deleting the comment cannot evade
//                             the check).
//
// Output: `file:line: rule-id: message`, one finding per line, sorted;
// exit status 1 if anything fired, 0 on a clean tree.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* summary;
};

const RuleInfo kRules[] = {
    {"check-in-decode-surface",
     "LBSQ_CHECK / aborting ByteReader reads / abort() are forbidden inside "
     "hostile-input decode surfaces (DESIGN.md S7); use the Try* tier and "
     "return Status"},
    {"guarded-by",
     "every data member of a class that owns a std::mutex must carry "
     "LBSQ_GUARDED_BY(mu) / LBSQ_PT_GUARDED_BY(mu) / LBSQ_EXCLUDED(reason) "
     "from common/annotations.h"},
    {"determinism",
     "std::random_device, rand, srand, time()-seeding and now()-as-seed are "
     "banned outside src/common/rng.h; experiments must replay from the seed "
     "alone"},
    {"banned-function",
     "sprintf/vsprintf/strtok/atof/atoi/atol/gets are banned (unbounded or "
     "locale/error-blind); use snprintf / strto* / std::from_chars"},
    {"naked-new-delete",
     "naked new/delete outside the storage allowlist; ownership goes through "
     "std::make_unique / containers"},
    {"header-guard",
     "headers start with an include guard (#ifndef/#define) or #pragma once"},
    {"using-namespace-header",
     "`using namespace` in a header leaks into every includer"},
};

// Hostile-input surfaces, hardwired by path suffix: function-name
// patterns (trailing '*' = prefix match) inside which rule
// check-in-decode-surface applies.
struct SurfaceRule {
  const char* path_suffix;
  std::vector<const char*> function_patterns;
};

const SurfaceRule kSurfaces[] = {
    {"core/wire_format.cc", {"Decode*", "Read*", "Try*"}},
    {"storage/checksummed_page_store.cc", {"Verify", "LoadTable", "Scrub"}},
    {"net/frame.cc", {"Decode*", "Next", "Feed", "Read*", "Try*"}},
};

// Files whose job is randomness or which may legitimately draw from the
// banned determinism sources.
const char* kDeterminismAllowedSuffixes[] = {"common/rng.h"};

// Directories whose files may use naked new/delete (page arenas own raw
// storage). Currently empty: the tree uses smart pointers throughout.
const char* kNewDeleteAllowedSuffixes[] = {"storage/page_arena"};

bool MatchesPattern(const std::string& name, const char* pattern) {
  const size_t len = std::strlen(pattern);
  if (len > 0 && pattern[len - 1] == '*') {
    return name.compare(0, len - 1, pattern, len - 1) == 0;
  }
  return name == pattern;
}

bool HasSuffix(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------
// Lexer: comments and string/char literals are stripped (so banned
// identifiers inside them never fire), but comment text is scanned for
// lint pragmas first.
// ---------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  // rule-ids allowed per line (pragma covers its line and the next).
  std::map<int, std::set<std::string>> allows;
  // lines of the file with comments/literals blanked, for line-oriented
  // checks (header guards).
  std::vector<std::string> stripped_lines;
  bool whole_file_decode_surface = false;
};

void RecordPragma(LexedFile* out, const std::string& comment, int line) {
  // Accept "lint: allow(rule)" and "lint:allow(rule)"; several pragmas
  // may share one comment.
  size_t pos = 0;
  while ((pos = comment.find("lint:", pos)) != std::string::npos) {
    size_t p = pos + 5;
    while (p < comment.size() && std::isspace(static_cast<unsigned char>(
                                     comment[p]))) {
      ++p;
    }
    if (comment.compare(p, 6, "allow(") == 0) {
      const size_t close = comment.find(')', p + 6);
      if (close != std::string::npos) {
        out->allows[line].insert(comment.substr(p + 6, close - (p + 6)));
      }
    } else if (comment.compare(p, 8, "surface(") == 0) {
      const size_t close = comment.find(')', p + 8);
      if (close != std::string::npos &&
          comment.substr(p + 8, close - (p + 8)) == "decode") {
        out->whole_file_decode_surface = true;
      }
    }
    pos = p;
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

LexedFile Lex(const std::string& text) {
  LexedFile out;
  std::string stripped;  // same length/line structure as text
  stripped.reserve(text.size());

  int line = 1;
  size_t i = 0;
  const size_t n = text.size();
  auto advance_copy = [&](char c) {
    stripped.push_back(c);
    if (c == '\n') ++line;
  };
  auto advance_blank = [&](char c) {
    stripped.push_back(c == '\n' ? '\n' : ' ');
    if (c == '\n') ++line;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int start_line = line;
      size_t j = i;
      while (j < n && text[j] != '\n') ++j;
      RecordPragma(&out, text.substr(i, j - i), start_line);
      while (i < j) advance_blank(text[i++]);
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) ++j;
      const size_t end = (j + 1 < n) ? j + 2 : n;
      RecordPragma(&out, text.substr(i, end - i), start_line);
      while (i < end) advance_blank(text[i++]);
    } else if (c == '"' || c == '\'') {
      // Raw strings: R"delim( ... )delim"
      const bool raw = c == '"' && i > 0 && text[i - 1] == 'R' &&
                       (i < 2 || !IsIdentChar(text[i - 2]));
      if (raw) {
        size_t j = i + 1;
        std::string delim;
        while (j < n && text[j] != '(') delim.push_back(text[j++]);
        const std::string closer = ")" + delim + "\"";
        const size_t close = text.find(closer, j);
        const size_t end = close == std::string::npos ? n : close + closer.size();
        while (i < end) advance_blank(text[i++]);
      } else {
        const char quote = c;
        advance_blank(text[i++]);
        while (i < n && text[i] != quote) {
          if (text[i] == '\\' && i + 1 < n) advance_blank(text[i++]);
          if (i < n) advance_blank(text[i++]);
        }
        if (i < n) advance_blank(text[i++]);  // closing quote
      }
    } else {
      advance_copy(text[i++]);
    }
  }

  // Split the stripped text into lines (header-guard checks) and tokens.
  {
    std::istringstream lines(stripped);
    std::string l;
    while (std::getline(lines, l)) out.stripped_lines.push_back(l);
  }

  int tline = 1;
  i = 0;
  while (i < stripped.size()) {
    const char c = stripped[i];
    if (c == '\n') {
      ++tline;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (IsIdentChar(c)) {
      size_t j = i;
      while (j < stripped.size() && IsIdentChar(stripped[j])) ++j;
      Token t;
      t.text = stripped.substr(i, j - i);
      t.line = tline;
      t.is_ident = !std::isdigit(static_cast<unsigned char>(c));
      out.tokens.push_back(std::move(t));
      i = j;
    } else {
      // Punctuation; fold "::" and "->" (the member-access and scope
      // operators the rules look at), everything else is single.
      Token t;
      if (c == ':' && i + 1 < stripped.size() && stripped[i + 1] == ':') {
        t.text = "::";
        i += 2;
      } else if (c == '-' && i + 1 < stripped.size() &&
                 stripped[i + 1] == '>') {
        t.text = "->";
        i += 2;
      } else {
        t.text = std::string(1, c);
        ++i;
      }
      t.line = tline;
      out.tokens.push_back(std::move(t));
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------

struct Finding {
  std::string path;
  int line;
  std::string rule;
  std::string message;
};

class Linter {
 public:
  explicit Linter(std::vector<Finding>* findings) : findings_(findings) {}

  void CheckFile(const std::string& display_path, const std::string& text);

 private:
  void Report(int line, const char* rule, const std::string& message) {
    // A pragma on the finding's line or on the line just above it
    // suppresses the finding.
    for (int l = line - 1; l <= line; ++l) {
      auto it = lexed_->allows.find(l);
      if (it != lexed_->allows.end() && it->second.count(rule)) return;
    }
    findings_->push_back({path_, line, rule, message});
  }

  const Token& Tok(size_t i) const {
    static const Token kEmpty;
    return i < lexed_->tokens.size() ? lexed_->tokens[i] : kEmpty;
  }
  bool PrevIsMemberAccess(size_t i) const {
    if (i == 0) return false;
    const std::string& p = lexed_->tokens[i - 1].text;
    return p == "." || p == "->";
  }

  void CheckHeaderGuard();
  void ScanTokens();
  void CheckMemberAnnotations(size_t class_open_index, size_t class_close_index,
                              int class_line, const std::string& class_name);
  void CheckDeterminismToken(size_t i);
  void CheckBannedToken(size_t i);
  void CheckSurfaceToken(size_t i);

  // Statement bounds around token i: [begin, end) delimited by ; { } at
  // the same nesting, used for "is this now() a seed" context checks.
  std::pair<size_t, size_t> StatementAround(size_t i) const;

  std::vector<Finding>* findings_;
  std::string path_;
  bool is_header_ = false;
  bool in_bench_ = false;
  bool determinism_allowed_ = false;
  bool new_delete_allowed_ = false;
  std::vector<const char*> surface_patterns_;
  const LexedFile* lexed_ = nullptr;
};

std::pair<size_t, size_t> Linter::StatementAround(size_t i) const {
  const std::vector<Token>& toks = lexed_->tokens;
  size_t begin = i;
  while (begin > 0) {
    const std::string& t = toks[begin - 1].text;
    if (t == ";" || t == "{" || t == "}") break;
    --begin;
  }
  size_t end = i;
  while (end < toks.size()) {
    const std::string& t = toks[end].text;
    if (t == ";" || t == "{" || t == "}") break;
    ++end;
  }
  return {begin, end};
}

void Linter::CheckHeaderGuard() {
  // First meaningful line must be `#pragma once` or `#ifndef`.
  for (size_t l = 0; l < lexed_->stripped_lines.size(); ++l) {
    std::string s = lexed_->stripped_lines[l];
    s.erase(0, s.find_first_not_of(" \t"));
    if (s.empty()) continue;
    if (s.rfind("#ifndef", 0) == 0) return;
    if (s.rfind("#pragma", 0) == 0 &&
        s.find("once") != std::string::npos) {
      return;
    }
    Report(static_cast<int>(l + 1), "header-guard",
           "header does not start with an include guard or #pragma once");
    return;
  }
}

void Linter::CheckDeterminismToken(size_t i) {
  if (determinism_allowed_) return;
  const Token& t = Tok(i);
  if (!t.is_ident) return;
  const bool call = Tok(i + 1).text == "(";
  if (t.text == "random_device") {
    Report(t.line, "determinism",
           "std::random_device is nondeterministic; seed an lbsq::Rng");
  } else if ((t.text == "rand" || t.text == "srand") && call &&
             !PrevIsMemberAccess(i)) {
    Report(t.line, "determinism",
           t.text + "() is banned; use lbsq::Rng (common/rng.h)");
  } else if (t.text == "time" && call && !PrevIsMemberAccess(i)) {
    Report(t.line, "determinism",
           "time()-based seeding is banned; experiments replay from fixed "
           "seeds");
  } else if (t.text == "now" && call && Tok(i + 2).text == ")") {
    if (in_bench_) return;  // timing blocks in bench/ are the use case
    // now() is fine for timing; it is banned when the statement around it
    // smells like seeding.
    const auto [begin, end] = StatementAround(i);
    for (size_t j = begin; j < end; ++j) {
      const Token& s = Tok(j);
      if (!s.is_ident) continue;
      std::string lower = s.text;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      if (lower.find("seed") != std::string::npos || s.text == "Rng" ||
          s.text == "mt19937" || s.text == "srand") {
        Report(t.line, "determinism",
               "now() used as a seed; experiments replay from fixed seeds");
        return;
      }
    }
  }
}

void Linter::CheckBannedToken(size_t i) {
  const Token& t = Tok(i);
  if (!t.is_ident) return;
  static const std::set<std::string> kBanned = {
      "sprintf", "vsprintf", "strtok", "atof", "atoi", "atol", "gets"};
  if (kBanned.count(t.text) && Tok(i + 1).text == "(" &&
      !PrevIsMemberAccess(i)) {
    Report(t.line, "banned-function",
           t.text + "() is banned; use a bounded/error-reporting equivalent");
  }
  if (!new_delete_allowed_) {
    if (t.text == "new" && Tok(i - 1).text != "operator") {
      Report(t.line, "naked-new-delete",
             "naked new; use std::make_unique or a container");
    } else if (t.text == "delete" && Tok(i - 1).text != "=" &&
               Tok(i - 1).text != "operator") {
      // `= delete` declares a deleted function; everything else is a
      // deallocation.
      Report(t.line, "naked-new-delete",
             "naked delete; owning pointers must be smart pointers");
    }
  }
}

void Linter::CheckSurfaceToken(size_t i) {
  const Token& t = Tok(i);
  if (!t.is_ident) return;
  if (t.text.rfind("LBSQ_CHECK", 0) == 0 || t.text.rfind("LBSQ_DCHECK", 0) == 0) {
    Report(t.line, "check-in-decode-surface",
           t.text + " aborts on hostile input; return Status instead");
  } else if (t.text == "abort" && Tok(i + 1).text == "(") {
    Report(t.line, "check-in-decode-surface",
           "abort() in a decode surface; return Status instead");
  } else if (PrevIsMemberAccess(i)) {
    if (t.text == "Read" && Tok(i + 1).text == "<") {
      Report(t.line, "check-in-decode-surface",
             "aborting ByteReader::Read<T> on untrusted bytes; use TryRead");
    } else if (t.text == "ReadVarCount" && Tok(i + 1).text == "(") {
      Report(t.line, "check-in-decode-surface",
             "aborting ByteReader::ReadVarCount on untrusted bytes; use "
             "TryReadVarCount");
    }
  }
}

void Linter::CheckMemberAnnotations(size_t class_open_index,
                                    size_t class_close_index, int class_line,
                                    const std::string& class_name) {
  // Member declarations are statements at class depth 1 whose declared
  // name follows the codebase convention (trailing underscore) and is
  // immediately followed by ; = { or [. Function bodies and nested
  // classes are skipped wholesale, so locals never match.
  struct Member {
    std::string name;
    int line;
    bool is_sync_primitive;  // std::mutex / std::condition_variable
    bool annotated;
  };
  std::vector<Member> members;
  bool has_mutex = false;

  size_t i = class_open_index + 1;
  size_t stmt_begin = i;
  int paren_depth = 0;
  while (i < class_close_index) {
    const Token& t = Tok(i);
    if (t.text == "(") {
      ++paren_depth;
    } else if (t.text == ")") {
      --paren_depth;
    } else if (t.text == "{") {
      // Skip nested braces (function bodies, nested classes, brace
      // initializers) — but a brace initializer belongs to the current
      // statement, so only reset the statement start for the others.
      int depth = 1;
      size_t j = i + 1;
      while (j < class_close_index && depth > 0) {
        if (Tok(j).text == "{") ++depth;
        if (Tok(j).text == "}") --depth;
        ++j;
      }
      i = j;
      continue;
    } else if (t.text == ";") {
      stmt_begin = i + 1;
    } else if (t.text == ":" && (Tok(i - 1).text == "public" ||
                                 Tok(i - 1).text == "private" ||
                                 Tok(i - 1).text == "protected")) {
      stmt_begin = i + 1;
    } else if (paren_depth == 0 && t.is_ident && t.text.size() > 1 &&
               t.text.back() == '_') {
      const std::string& next = Tok(i + 1).text;
      if (next == ";" || next == "=" || next == "{" || next == "[") {
        // Statement tokens: from stmt_begin to the terminating ';'.
        size_t end = i;
        int inner_paren = 0, inner_brace = 0;
        while (end < class_close_index) {
          const std::string& e = Tok(end).text;
          if (e == "(") ++inner_paren;
          if (e == ")") --inner_paren;
          if (e == "{") ++inner_brace;
          if (e == "}") --inner_brace;
          if (e == ";" && inner_paren == 0 && inner_brace == 0) break;
          ++end;
        }
        bool is_static = false, is_mutex = false, is_cv = false,
             annotated = false;
        for (size_t j = stmt_begin; j < end; ++j) {
          const std::string& s = Tok(j).text;
          if (s == "static") is_static = true;
          if (s == "mutex") is_mutex = true;
          if (s == "condition_variable") is_cv = true;
          if (s.rfind("LBSQ_GUARDED_BY", 0) == 0 ||
              s.rfind("LBSQ_PT_GUARDED_BY", 0) == 0 ||
              s.rfind("LBSQ_EXCLUDED", 0) == 0) {
            annotated = true;
          }
        }
        if (!is_static) {
          if (is_mutex) has_mutex = true;
          members.push_back({t.text, t.line, is_mutex || is_cv, annotated});
        }
        i = end;  // resume at the terminating ';'
        continue;
      }
    }
    ++i;
  }

  if (!has_mutex) return;
  for (const Member& m : members) {
    if (m.is_sync_primitive || m.annotated) continue;
    Report(m.line, "guarded-by",
           "class " + class_name + " owns a std::mutex; member " + m.name +
               " needs LBSQ_GUARDED_BY / LBSQ_EXCLUDED "
               "(common/annotations.h)");
  }
  (void)class_line;
}

void Linter::ScanTokens() {
  const std::vector<Token>& toks = lexed_->tokens;

  // Brace-kind stack for function/namespace/class tracking.
  enum class BraceKind { kNamespace, kFunction, kClass, kOther };
  struct Scope {
    BraceKind kind;
    bool surface = false;       // function body subject to rule R1
    size_t open_index = 0;      // token index of '{'
    int open_line = 0;
    std::string name;
  };
  std::vector<Scope> stack;

  // Pending function-signature automaton (active only outside functions).
  std::string pending_name;
  int pending_line = 0;
  bool have_params = false;
  int sig_paren_depth = 0;
  // Last class/struct keyword seen in the current statement, for
  // classifying the next '{'.
  std::string pending_class_kw_name;
  bool pending_namespace = false;
  bool pending_class = false;
  bool pending_enum = false;

  auto in_function = [&] {
    for (const Scope& s : stack) {
      if (s.kind == BraceKind::kFunction) return true;
    }
    return false;
  };
  auto in_surface = [&] {
    for (const Scope& s : stack) {
      if (s.surface) return true;
    }
    return false;
  };
  auto reset_statement = [&] {
    pending_name.clear();
    have_params = false;
    pending_namespace = false;
    pending_class = false;
    pending_enum = false;
    pending_class_kw_name.clear();
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    // Line-independent token rules.
    CheckDeterminismToken(i);
    CheckBannedToken(i);
    if (in_surface()) CheckSurfaceToken(i);
    if (is_header_ && t.text == "using" && Tok(i + 1).text == "namespace") {
      Report(t.line, "using-namespace-header",
             "`using namespace` in a header leaks into every includer");
    }

    // Scope tracking.
    if (t.text == "{") {
      Scope s;
      s.open_index = i;
      s.open_line = t.line;
      if (in_function()) {
        s.kind = BraceKind::kOther;
      } else if (pending_namespace) {
        s.kind = BraceKind::kNamespace;
      } else if (pending_enum) {
        s.kind = BraceKind::kOther;
      } else if (pending_class) {
        s.kind = BraceKind::kClass;
        s.name = pending_class_kw_name;
      } else if (have_params && !pending_name.empty()) {
        s.kind = BraceKind::kFunction;
        s.name = pending_name;
        if (lexed_->whole_file_decode_surface) {
          s.surface = true;
        } else {
          for (const char* pattern : surface_patterns_) {
            if (MatchesPattern(pending_name, pattern)) {
              s.surface = true;
              break;
            }
          }
        }
      } else {
        s.kind = BraceKind::kOther;  // brace init, array init, ...
      }
      stack.push_back(s);
      reset_statement();
    } else if (t.text == "}") {
      if (!stack.empty()) {
        const Scope s = stack.back();
        stack.pop_back();
        if (s.kind == BraceKind::kClass) {
          CheckMemberAnnotations(s.open_index, i, s.open_line, s.name);
        }
      }
      reset_statement();
    } else if (t.text == ";" && sig_paren_depth == 0) {
      reset_statement();
    } else if (!in_function()) {
      // Function-signature automaton.
      if (t.text == "namespace") {
        pending_namespace = true;
      } else if (t.text == "class" || t.text == "struct" ||
                 t.text == "union") {
        if (Tok(i - 1).text == "enum") {
          pending_enum = true;  // enum class
        } else {
          pending_class = true;
          // The class name is the next identifier.
          if (Tok(i + 1).is_ident) pending_class_kw_name = Tok(i + 1).text;
        }
      } else if (t.text == "enum") {
        pending_enum = true;
      } else if (t.text == "(") {
        if (sig_paren_depth == 0 && !have_params && Tok(i - 1).is_ident) {
          pending_name = Tok(i - 1).text;
          pending_line = t.line;
        }
        ++sig_paren_depth;
      } else if (t.text == ")") {
        if (sig_paren_depth > 0) --sig_paren_depth;
        if (sig_paren_depth == 0 && !pending_name.empty()) {
          have_params = true;  // freeze across ctor-init-lists
        }
      } else if (t.text == "=" && sig_paren_depth == 0) {
        // `= default;` / `= delete;` / variable init — not a definition.
        pending_name.clear();
        have_params = false;
      }
    }
  }
  (void)pending_line;
}

void Linter::CheckFile(const std::string& display_path,
                       const std::string& text) {
  path_ = display_path;
  is_header_ = HasSuffix(path_, ".h") || HasSuffix(path_, ".hpp");
  // Normalize path separators for suffix tables.
  std::string norm = path_;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  in_bench_ = norm.find("bench/") != std::string::npos;

  determinism_allowed_ = false;
  for (const char* suffix : kDeterminismAllowedSuffixes) {
    if (HasSuffix(norm, suffix)) determinism_allowed_ = true;
  }
  new_delete_allowed_ = false;
  for (const char* suffix : kNewDeleteAllowedSuffixes) {
    if (norm.find(suffix) != std::string::npos) new_delete_allowed_ = true;
  }
  surface_patterns_.clear();
  for (const SurfaceRule& s : kSurfaces) {
    if (HasSuffix(norm, s.path_suffix)) {
      surface_patterns_ = s.function_patterns;
    }
  }

  const LexedFile lexed = Lex(text);
  lexed_ = &lexed;
  if (is_header_) CheckHeaderGuard();
  ScanTokens();
  lexed_ = nullptr;
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

int Usage() {
  std::fprintf(stderr,
               "usage: lbsq_lint [--root DIR] [--list-rules] [files...]\n"
               "With no files, lints src/ tools/ bench/ examples/ under "
               "--root (default: cwd).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::printf("%-24s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lbsq_lint: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  std::vector<std::pair<std::string, std::string>> display_and_real;
  if (files.empty()) {
    for (const char* dir : {"src", "tools", "bench", "examples"}) {
      const fs::path base = fs::path(root) / dir;
      std::error_code ec;
      if (!fs::is_directory(base, ec)) continue;
      for (auto it = fs::recursive_directory_iterator(base, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          const std::string real = it->path().string();
          // Report paths relative to the root for stable output.
          std::string display = real;
          const std::string prefix = (fs::path(root) / "").string();
          if (display.rfind(prefix, 0) == 0) display.erase(0, prefix.size());
          display_and_real.emplace_back(display, real);
        }
      }
    }
  } else {
    for (const std::string& f : files) display_and_real.emplace_back(f, f);
  }
  std::sort(display_and_real.begin(), display_and_real.end());

  std::vector<Finding> findings;
  Linter linter(&findings);
  bool read_error = false;
  for (const auto& [display, real] : display_and_real) {
    std::ifstream in(real, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "lbsq_lint: cannot read %s\n", real.c_str());
      read_error = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    linter.CheckFile(display, buf.str());
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& f : findings) {
    std::printf("%s:%d: %s: %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "lbsq_lint: %zu finding(s)\n", findings.size());
  }
  return (findings.empty() && !read_error) ? 0 : 1;
}
