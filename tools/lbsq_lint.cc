// lbsq_lint — project-specific static checker for the lbsq tree.
//
// This box builds with g++ only (no clang-tidy, no cppcheck), so the
// invariants the codebase promises in prose — the abort/Status boundary
// of DESIGN.md §7, the BatchServer locking discipline, deterministic
// experiments — are enforced here, by a comment/string-aware lexer over
// the sources (no full C++ parse; the rules are chosen so token-level
// analysis is sound for this codebase's style).
//
// Rules (see --list-rules and DESIGN.md "Static analysis layer"):
//   check-in-decode-surface  no aborting construct in hostile-input code
//   guarded-by               mutex-owning classes annotate every member
//   guarded-access           LBSQ_GUARDED_BY members only touched with
//                            the mutex provably held (flow-sensitive)
//   status-propagation       StatusOr value access dominated by ok()
//   event-loop-blocking      no blocking calls on the poll-loop thread
//   determinism              no nondeterministic randomness sources
//   banned-function          sprintf/strtok/atof/... are off limits
//   naked-new-delete         ownership goes through smart pointers
//   header-guard             every header has a guard or #pragma once
//   using-namespace-header   no `using namespace` in headers
//
// The first seven rules are token-local. guarded-access and
// status-propagation are *flow-sensitive*: the linter runs two passes
// over the input set — pass 1 builds a registry of every class's mutex
// members, LBSQ_GUARDED_BY(member -> mutex) map and LBSQ_REQUIRES
// method contracts; pass 2 walks each function body with a scope stack,
// tracking the must-held lock set through lock_guard / scoped_lock /
// unique_lock construction (incl. defer/adopt tags), explicit
// .lock()/.unlock(), LBSQ_ASSERT_HELD, scope exits and early returns,
// and tracking the checked-ness of each StatusOr local through
// dominating .ok() branches and LBSQ_RETURN_IF_ERROR. The lattice is
// deliberately conservative (must-held, not may-held): a lock taken
// inside a conditional is not held after it, an unlock anywhere kills
// held-ness for the rest of the scope. Lambda bodies are treated as
// inline blocks that inherit the enclosing lock state — exactly right
// for condition_variable wait predicates, the one lambda idiom the
// serving stack uses under a lock. Constructors are exempt (the object
// is not shared during construction; clang exempts them too).
//
// Escape hatches:
//   // lint: allow(rule-id)   suppresses `rule-id` on this line and the
//                             next (so a pragma may sit on its own line
//                             above a long statement).
//   // lint: surface(decode)  marks the whole file as a hostile-input
//                             decode surface (used by future surfaces
//                             and the fixture self-tests; the two known
//                             production surfaces are also hardwired by
//                             path so deleting the comment cannot evade
//                             the check).
//
// Output: `file:line: rule-id: message`, one finding per line, sorted;
// exit status 1 if anything fired, 0 on a clean tree.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* summary;
};

const RuleInfo kRules[] = {
    {"check-in-decode-surface",
     "LBSQ_CHECK / aborting ByteReader reads / abort() are forbidden inside "
     "hostile-input decode surfaces (DESIGN.md S7); use the Try* tier and "
     "return Status"},
    {"guarded-by",
     "every data member of a class that owns a std::mutex must carry "
     "LBSQ_GUARDED_BY(mu) / LBSQ_PT_GUARDED_BY(mu) / LBSQ_EXCLUDED(reason) "
     "from common/annotations.h"},
    {"guarded-access",
     "flow-sensitive lock check: a member declared LBSQ_GUARDED_BY(mu) may "
     "only be read or written while mu is provably held (RAII guard, "
     "explicit lock, LBSQ_REQUIRES entry contract or LBSQ_ASSERT_HELD); "
     "calling an LBSQ_REQUIRES method needs the mutex held at the call "
     "site, and a manually locked mutex may not leak past a return"},
    {"status-propagation",
     "inside Status/StatusOr-returning functions, value access "
     "(.value() / * / ->) on a StatusOr local must be dominated by an "
     ".ok() check or LBSQ_RETURN_IF_ERROR on that same local; "
     "re-assignment invalidates earlier checks"},
    {"event-loop-blocking",
     "src/net/event_loop.cc, net_server.cc and push/push_scheduler.cc "
     "run on the single poll thread: sleeping "
     "(sleep/usleep/nanosleep/sleep_for/sleep_until), blocking accept(2) "
     "(use accept4 + SOCK_NONBLOCK) and MSG_WAITALL recv/send are banned "
     "there"},
    {"determinism",
     "std::random_device, rand, srand, time()-seeding and now()-as-seed are "
     "banned outside src/common/rng.h; experiments must replay from the seed "
     "alone"},
    {"banned-function",
     "sprintf/vsprintf/strtok/atof/atoi/atol/gets are banned (unbounded or "
     "locale/error-blind); use snprintf / strto* / std::from_chars"},
    {"naked-new-delete",
     "naked new/delete outside the storage allowlist; ownership goes through "
     "std::make_unique / containers"},
    {"header-guard",
     "headers start with an include guard (#ifndef/#define) or #pragma once"},
    {"using-namespace-header",
     "`using namespace` in a header leaks into every includer"},
};

// Hostile-input surfaces, hardwired by path suffix: function-name
// patterns (trailing '*' = prefix match) inside which rule
// check-in-decode-surface applies.
struct SurfaceRule {
  const char* path_suffix;
  std::vector<const char*> function_patterns;
};

const SurfaceRule kSurfaces[] = {
    {"core/wire_format.cc", {"Decode*", "Read*", "Try*"}},
    {"storage/checksummed_page_store.cc", {"Verify", "LoadTable", "Scrub"}},
    {"net/frame.cc", {"Decode*", "Next", "Feed", "Read*", "Try*"}},
};

// Single-threaded poll-loop surfaces, hardwired by path suffix: rule
// event-loop-blocking applies to every function in these files. The
// push scheduler runs entirely inside EventLoop callbacks, so it is a
// loop surface like the loop itself.
const char* kLoopSurfaceSuffixes[] = {"net/event_loop.cc", "net/net_server.cc",
                                      "push/push_scheduler.cc"};

// Calls that park the poll-loop thread. `accept` is listed because the
// loop must go through accept4(SOCK_NONBLOCK); MSG_WAITALL is caught
// separately (it turns a nonblocking recv into a blocking one).
const std::set<std::string> kBlockingCalls = {
    "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until", "accept"};

// Files whose job is randomness or which may legitimately draw from the
// banned determinism sources.
const char* kDeterminismAllowedSuffixes[] = {"common/rng.h"};

// Directories whose files may use naked new/delete (page arenas own raw
// storage). Currently empty: the tree uses smart pointers throughout.
const char* kNewDeleteAllowedSuffixes[] = {"storage/page_arena"};

bool MatchesPattern(const std::string& name, const char* pattern) {
  const size_t len = std::strlen(pattern);
  if (len > 0 && pattern[len - 1] == '*') {
    return name.compare(0, len - 1, pattern, len - 1) == 0;
  }
  return name == pattern;
}

bool HasSuffix(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------
// Lexer: comments and string/char literals are stripped (so banned
// identifiers inside them never fire), but comment text is scanned for
// lint pragmas first.
// ---------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  // rule-ids allowed per line (pragma covers its line and the next).
  std::map<int, std::set<std::string>> allows;
  // lines of the file with comments/literals blanked, for line-oriented
  // checks (header guards).
  std::vector<std::string> stripped_lines;
  bool whole_file_decode_surface = false;
};

void RecordPragma(LexedFile* out, const std::string& comment, int line) {
  // Accept "lint: allow(rule)" and "lint:allow(rule)"; several pragmas
  // may share one comment.
  size_t pos = 0;
  while ((pos = comment.find("lint:", pos)) != std::string::npos) {
    size_t p = pos + 5;
    while (p < comment.size() && std::isspace(static_cast<unsigned char>(
                                     comment[p]))) {
      ++p;
    }
    if (comment.compare(p, 6, "allow(") == 0) {
      const size_t close = comment.find(')', p + 6);
      if (close != std::string::npos) {
        out->allows[line].insert(comment.substr(p + 6, close - (p + 6)));
      }
    } else if (comment.compare(p, 8, "surface(") == 0) {
      const size_t close = comment.find(')', p + 8);
      if (close != std::string::npos &&
          comment.substr(p + 8, close - (p + 8)) == "decode") {
        out->whole_file_decode_surface = true;
      }
    }
    pos = p;
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

LexedFile Lex(const std::string& text) {
  LexedFile out;
  std::string stripped;  // same length/line structure as text
  stripped.reserve(text.size());

  int line = 1;
  size_t i = 0;
  const size_t n = text.size();
  auto advance_copy = [&](char c) {
    stripped.push_back(c);
    if (c == '\n') ++line;
  };
  auto advance_blank = [&](char c) {
    stripped.push_back(c == '\n' ? '\n' : ' ');
    if (c == '\n') ++line;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int start_line = line;
      size_t j = i;
      while (j < n && text[j] != '\n') ++j;
      RecordPragma(&out, text.substr(i, j - i), start_line);
      while (i < j) advance_blank(text[i++]);
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) ++j;
      const size_t end = (j + 1 < n) ? j + 2 : n;
      RecordPragma(&out, text.substr(i, end - i), start_line);
      while (i < end) advance_blank(text[i++]);
    } else if (c == '"' || c == '\'') {
      // Raw strings: R"delim( ... )delim"
      const bool raw = c == '"' && i > 0 && text[i - 1] == 'R' &&
                       (i < 2 || !IsIdentChar(text[i - 2]));
      if (raw) {
        size_t j = i + 1;
        std::string delim;
        while (j < n && text[j] != '(') delim.push_back(text[j++]);
        const std::string closer = ")" + delim + "\"";
        const size_t close = text.find(closer, j);
        const size_t end = close == std::string::npos ? n : close + closer.size();
        while (i < end) advance_blank(text[i++]);
      } else {
        const char quote = c;
        advance_blank(text[i++]);
        while (i < n && text[i] != quote) {
          if (text[i] == '\\' && i + 1 < n) advance_blank(text[i++]);
          if (i < n) advance_blank(text[i++]);
        }
        if (i < n) advance_blank(text[i++]);  // closing quote
      }
    } else {
      advance_copy(text[i++]);
    }
  }

  // Split the stripped text into lines (header-guard checks) and tokens.
  {
    std::istringstream lines(stripped);
    std::string l;
    while (std::getline(lines, l)) out.stripped_lines.push_back(l);
  }

  int tline = 1;
  i = 0;
  while (i < stripped.size()) {
    const char c = stripped[i];
    if (c == '\n') {
      ++tline;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (IsIdentChar(c)) {
      size_t j = i;
      while (j < stripped.size() && IsIdentChar(stripped[j])) ++j;
      Token t;
      t.text = stripped.substr(i, j - i);
      t.line = tline;
      t.is_ident = !std::isdigit(static_cast<unsigned char>(c));
      out.tokens.push_back(std::move(t));
      i = j;
    } else {
      // Punctuation; fold "::" and "->" (the member-access and scope
      // operators the rules look at), everything else is single.
      Token t;
      if (c == ':' && i + 1 < stripped.size() && stripped[i + 1] == ':') {
        t.text = "::";
        i += 2;
      } else if (c == '-' && i + 1 < stripped.size() &&
                 stripped[i + 1] == '>') {
        t.text = "->";
        i += 2;
      } else {
        t.text = std::string(1, c);
        ++i;
      }
      t.line = tline;
      out.tokens.push_back(std::move(t));
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Class registry (pass 1 of the flow-sensitive rules)
// ---------------------------------------------------------------------
// Keyed by unqualified class name — unique across this tree for every
// class that matters (the lint would collide registries for same-named
// classes in different namespaces; none exist, and a collision only
// widens the guarded set, it cannot hide a finding for an existing
// member/mutex pair).

struct ClassInfo {
  std::set<std::string> mutexes;               // std::mutex data members
  std::map<std::string, std::string> guarded;  // member -> guarding mutex
  // method name -> mutexes its LBSQ_REQUIRES contract demands on entry.
  std::map<std::string, std::set<std::string>> requires_held;

  bool NeedsBodyAnalysis() const {
    return !guarded.empty() || !requires_held.empty();
  }
};

using ClassRegistry = std::map<std::string, ClassInfo>;

// ---------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------

struct Finding {
  std::string path;
  int line;
  std::string rule;
  std::string message;
};

class Linter {
 public:
  Linter(std::vector<Finding>* findings, ClassRegistry* registry)
      : findings_(findings), registry_(registry) {}

  // Pass 1: populate the class registry, report nothing.
  void CollectFile(const std::string& display_path, const LexedFile& lexed);
  // Pass 2: the checks, consulting the registry built by pass 1.
  void CheckFile(const std::string& display_path, const LexedFile& lexed);

 private:
  void Report(int line, const char* rule, const std::string& message) {
    if (collecting_) return;
    // A pragma on the finding's line or on the line just above it
    // suppresses the finding.
    for (int l = line - 1; l <= line; ++l) {
      auto it = lexed_->allows.find(l);
      if (it != lexed_->allows.end() && it->second.count(rule)) return;
    }
    findings_->push_back({path_, line, rule, message});
  }

  const Token& Tok(size_t i) const {
    static const Token kEmpty;
    return i < lexed_->tokens.size() ? lexed_->tokens[i] : kEmpty;
  }
  bool PrevIsMemberAccess(size_t i) const {
    if (i == 0) return false;
    const std::string& p = lexed_->tokens[i - 1].text;
    return p == "." || p == "->";
  }

  // Context of one function body, assembled by the signature automaton
  // when its '{' opens; consumed by the flow analyses when it closes.
  struct FuncCtx {
    std::string name;
    std::string class_name;  // qualifier or enclosing class ("" = free)
    bool is_ctor = false;
    bool is_dtor = false;
    bool returns_status = false;     // Status/StatusOr in the return type
    bool has_acquire_release = false;  // LBSQ_ACQUIRE/RELEASE on the sig
    std::set<std::string> entry_held;  // LBSQ_REQUIRES on the definition
  };

  void CheckHeaderGuard();
  void ScanTokens();
  void CheckMemberAnnotations(size_t class_open_index, size_t class_close_index,
                              int class_line, const std::string& class_name);
  void CollectClassInfo(size_t class_open_index, size_t class_close_index,
                        const std::string& class_name);
  void AnalyzeLockDiscipline(size_t body_open, size_t body_close,
                             const FuncCtx& ctx, const ClassInfo& info);
  void AnalyzeStatusFlow(size_t body_open, size_t body_close);
  void CheckDeterminismToken(size_t i);
  void CheckBannedToken(size_t i);
  void CheckSurfaceToken(size_t i);
  void CheckLoopToken(size_t i);
  // Computes the per-file rule configuration (surface tables, allow
  // lists, path-keyed toggles) shared by both passes.
  void SetupFile(const std::string& display_path);

  // Statement bounds around token i: [begin, end) delimited by ; { } at
  // the same nesting, used for "is this now() a seed" context checks.
  std::pair<size_t, size_t> StatementAround(size_t i) const;

  // Index of the token matching `open_text` at token index i (which must
  // hold `open_text`), scanning to `limit`; returns `limit` if unmatched.
  size_t MatchForward(size_t i, const char* open_text, const char* close_text,
                      size_t limit) const;
  // First index >= i past a balanced <...> template argument list (i must
  // point at '<'); returns i unchanged if Tok(i) is not '<'.
  size_t SkipAngles(size_t i, size_t limit) const;
  // Last identifier token inside [begin, end) — how a mutex argument like
  // `self->mu_` or `queue.mu_` collapses to its mutex name.
  std::string LastIdentIn(size_t begin, size_t end) const;
  // Parses `MACRO(a, b.mu_)`-style args at the '(' at index i into the
  // per-argument last identifiers; returns index of the closing ')'.
  size_t ParseMacroArgs(size_t i, size_t limit,
                        std::vector<std::string>* out) const;

  std::vector<Finding>* findings_;
  ClassRegistry* registry_;
  bool collecting_ = false;
  std::string path_;
  bool is_header_ = false;
  bool in_bench_ = false;
  bool determinism_allowed_ = false;
  bool new_delete_allowed_ = false;
  bool loop_surface_ = false;
  std::vector<const char*> surface_patterns_;
  const LexedFile* lexed_ = nullptr;
};

std::pair<size_t, size_t> Linter::StatementAround(size_t i) const {
  const std::vector<Token>& toks = lexed_->tokens;
  size_t begin = i;
  while (begin > 0) {
    const std::string& t = toks[begin - 1].text;
    if (t == ";" || t == "{" || t == "}") break;
    --begin;
  }
  size_t end = i;
  while (end < toks.size()) {
    const std::string& t = toks[end].text;
    if (t == ";" || t == "{" || t == "}") break;
    ++end;
  }
  return {begin, end};
}

size_t Linter::MatchForward(size_t i, const char* open_text,
                            const char* close_text, size_t limit) const {
  int depth = 0;
  for (size_t j = i; j < limit; ++j) {
    const std::string& t = Tok(j).text;
    if (t == open_text) {
      ++depth;
    } else if (t == close_text) {
      if (--depth == 0) return j;
    }
  }
  return limit;
}

size_t Linter::SkipAngles(size_t i, size_t limit) const {
  if (Tok(i).text != "<") return i;
  int depth = 0;
  for (size_t j = i; j < limit; ++j) {
    const std::string& t = Tok(j).text;
    if (t == "<") ++depth;
    if (t == ">") {
      if (--depth == 0) return j + 1;
    }
    // A template argument list never crosses these; bail out so a lone
    // less-than comparison cannot swallow the rest of the function.
    if (t == ";" || t == "{" || t == "}") return i;
  }
  return limit;
}

std::string Linter::LastIdentIn(size_t begin, size_t end) const {
  std::string last;
  for (size_t j = begin; j < end; ++j) {
    if (Tok(j).is_ident) last = Tok(j).text;
  }
  return last;
}

size_t Linter::ParseMacroArgs(size_t i, size_t limit,
                              std::vector<std::string>* out) const {
  const size_t close = MatchForward(i, "(", ")", limit);
  size_t arg_begin = i + 1;
  int depth = 0;
  for (size_t j = i + 1; j < close; ++j) {
    const std::string& t = Tok(j).text;
    if (t == "(" || t == "<" || t == "[") ++depth;
    if (t == ")" || t == ">" || t == "]") --depth;
    if (t == "," && depth == 0) {
      out->push_back(LastIdentIn(arg_begin, j));
      arg_begin = j + 1;
    }
  }
  if (arg_begin < close) out->push_back(LastIdentIn(arg_begin, close));
  return close;
}

void Linter::CheckLoopToken(size_t i) {
  const Token& t = Tok(i);
  if (!t.is_ident) return;
  if (kBlockingCalls.count(t.text) && Tok(i + 1).text == "(") {
    if (t.text == "accept") {
      Report(t.line, "event-loop-blocking",
             "accept(2) blocks the poll loop; use accept4 with "
             "SOCK_NONBLOCK");
    } else {
      Report(t.line, "event-loop-blocking",
             t.text + "() parks the poll-loop thread; every connection "
             "stalls until it returns");
    }
  } else if (t.text == "MSG_WAITALL") {
    Report(t.line, "event-loop-blocking",
           "MSG_WAITALL turns a nonblocking recv/send into a blocking "
           "one; the loop's fds must stay nonblocking");
  }
}

void Linter::CheckHeaderGuard() {
  // First meaningful line must be `#pragma once` or `#ifndef`.
  for (size_t l = 0; l < lexed_->stripped_lines.size(); ++l) {
    std::string s = lexed_->stripped_lines[l];
    s.erase(0, s.find_first_not_of(" \t"));
    if (s.empty()) continue;
    if (s.rfind("#ifndef", 0) == 0) return;
    if (s.rfind("#pragma", 0) == 0 &&
        s.find("once") != std::string::npos) {
      return;
    }
    Report(static_cast<int>(l + 1), "header-guard",
           "header does not start with an include guard or #pragma once");
    return;
  }
}

void Linter::CheckDeterminismToken(size_t i) {
  if (determinism_allowed_) return;
  const Token& t = Tok(i);
  if (!t.is_ident) return;
  const bool call = Tok(i + 1).text == "(";
  if (t.text == "random_device") {
    Report(t.line, "determinism",
           "std::random_device is nondeterministic; seed an lbsq::Rng");
  } else if ((t.text == "rand" || t.text == "srand") && call &&
             !PrevIsMemberAccess(i)) {
    Report(t.line, "determinism",
           t.text + "() is banned; use lbsq::Rng (common/rng.h)");
  } else if (t.text == "time" && call && !PrevIsMemberAccess(i)) {
    Report(t.line, "determinism",
           "time()-based seeding is banned; experiments replay from fixed "
           "seeds");
  } else if (t.text == "now" && call && Tok(i + 2).text == ")") {
    if (in_bench_) return;  // timing blocks in bench/ are the use case
    // now() is fine for timing; it is banned when the statement around it
    // smells like seeding.
    const auto [begin, end] = StatementAround(i);
    for (size_t j = begin; j < end; ++j) {
      const Token& s = Tok(j);
      if (!s.is_ident) continue;
      std::string lower = s.text;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      if (lower.find("seed") != std::string::npos || s.text == "Rng" ||
          s.text == "mt19937" || s.text == "srand") {
        Report(t.line, "determinism",
               "now() used as a seed; experiments replay from fixed seeds");
        return;
      }
    }
  }
}

void Linter::CheckBannedToken(size_t i) {
  const Token& t = Tok(i);
  if (!t.is_ident) return;
  static const std::set<std::string> kBanned = {
      "sprintf", "vsprintf", "strtok", "atof", "atoi", "atol", "gets"};
  if (kBanned.count(t.text) && Tok(i + 1).text == "(" &&
      !PrevIsMemberAccess(i)) {
    Report(t.line, "banned-function",
           t.text + "() is banned; use a bounded/error-reporting equivalent");
  }
  if (!new_delete_allowed_) {
    if (t.text == "new" && Tok(i - 1).text != "operator") {
      Report(t.line, "naked-new-delete",
             "naked new; use std::make_unique or a container");
    } else if (t.text == "delete" && Tok(i - 1).text != "=" &&
               Tok(i - 1).text != "operator") {
      // `= delete` declares a deleted function; everything else is a
      // deallocation.
      Report(t.line, "naked-new-delete",
             "naked delete; owning pointers must be smart pointers");
    }
  }
}

void Linter::CheckSurfaceToken(size_t i) {
  const Token& t = Tok(i);
  if (!t.is_ident) return;
  if (t.text.rfind("LBSQ_CHECK", 0) == 0 || t.text.rfind("LBSQ_DCHECK", 0) == 0) {
    Report(t.line, "check-in-decode-surface",
           t.text + " aborts on hostile input; return Status instead");
  } else if (t.text == "abort" && Tok(i + 1).text == "(") {
    Report(t.line, "check-in-decode-surface",
           "abort() in a decode surface; return Status instead");
  } else if (PrevIsMemberAccess(i)) {
    if (t.text == "Read" && Tok(i + 1).text == "<") {
      Report(t.line, "check-in-decode-surface",
             "aborting ByteReader::Read<T> on untrusted bytes; use TryRead");
    } else if (t.text == "ReadVarCount" && Tok(i + 1).text == "(") {
      Report(t.line, "check-in-decode-surface",
             "aborting ByteReader::ReadVarCount on untrusted bytes; use "
             "TryReadVarCount");
    }
  }
}

void Linter::CheckMemberAnnotations(size_t class_open_index,
                                    size_t class_close_index, int class_line,
                                    const std::string& class_name) {
  // Member declarations are statements at class depth 1 whose declared
  // name follows the codebase convention (trailing underscore) and is
  // immediately followed by ; = { or [. Function bodies and nested
  // classes are skipped wholesale, so locals never match.
  struct Member {
    std::string name;
    int line;
    bool is_sync_primitive;  // std::mutex / std::condition_variable
    bool annotated;
  };
  std::vector<Member> members;
  bool has_mutex = false;

  size_t i = class_open_index + 1;
  size_t stmt_begin = i;
  int paren_depth = 0;
  while (i < class_close_index) {
    const Token& t = Tok(i);
    if (t.text == "(") {
      ++paren_depth;
    } else if (t.text == ")") {
      --paren_depth;
    } else if (t.text == "{") {
      // Skip nested braces (function bodies, nested classes, brace
      // initializers) — but a brace initializer belongs to the current
      // statement, so only reset the statement start for the others.
      int depth = 1;
      size_t j = i + 1;
      while (j < class_close_index && depth > 0) {
        if (Tok(j).text == "{") ++depth;
        if (Tok(j).text == "}") --depth;
        ++j;
      }
      i = j;
      continue;
    } else if (t.text == ";") {
      stmt_begin = i + 1;
    } else if (t.text == ":" && (Tok(i - 1).text == "public" ||
                                 Tok(i - 1).text == "private" ||
                                 Tok(i - 1).text == "protected")) {
      stmt_begin = i + 1;
    } else if (paren_depth == 0 && t.is_ident && t.text.size() > 1 &&
               t.text.back() == '_') {
      const std::string& next = Tok(i + 1).text;
      if (next == ";" || next == "=" || next == "{" || next == "[") {
        // Statement tokens: from stmt_begin to the terminating ';'.
        size_t end = i;
        int inner_paren = 0, inner_brace = 0;
        while (end < class_close_index) {
          const std::string& e = Tok(end).text;
          if (e == "(") ++inner_paren;
          if (e == ")") --inner_paren;
          if (e == "{") ++inner_brace;
          if (e == "}") --inner_brace;
          if (e == ";" && inner_paren == 0 && inner_brace == 0) break;
          ++end;
        }
        bool is_static = false, is_mutex = false, is_cv = false,
             annotated = false;
        for (size_t j = stmt_begin; j < end; ++j) {
          const std::string& s = Tok(j).text;
          if (s == "static") is_static = true;
          if (s == "mutex") is_mutex = true;
          if (s == "condition_variable") is_cv = true;
          if (s.rfind("LBSQ_GUARDED_BY", 0) == 0 ||
              s.rfind("LBSQ_PT_GUARDED_BY", 0) == 0 ||
              s.rfind("LBSQ_EXCLUDED", 0) == 0) {
            annotated = true;
          }
        }
        if (!is_static) {
          if (is_mutex) has_mutex = true;
          members.push_back({t.text, t.line, is_mutex || is_cv, annotated});
        }
        i = end;  // resume at the terminating ';'
        continue;
      }
    }
    ++i;
  }

  if (!has_mutex) return;
  for (const Member& m : members) {
    if (m.is_sync_primitive || m.annotated) continue;
    Report(m.line, "guarded-by",
           "class " + class_name + " owns a std::mutex; member " + m.name +
               " needs LBSQ_GUARDED_BY / LBSQ_EXCLUDED "
               "(common/annotations.h)");
  }
  (void)class_line;
}

// Pass-1 registry build over one class body: mutex members, the
// LBSQ_GUARDED_BY(member -> mutex) map, and per-method LBSQ_REQUIRES
// contracts (from in-class declarations or inline definitions; an
// out-of-line definition repeating the annotation is also honored, at
// analysis time). Scans class depth 1 only; nested classes and method
// bodies are skipped and collected through their own scopes.
void Linter::CollectClassInfo(size_t class_open_index,
                              size_t class_close_index,
                              const std::string& class_name) {
  if (class_name.empty()) return;
  ClassInfo& info = (*registry_)[class_name];
  size_t i = class_open_index + 1;
  size_t stmt_begin = i;
  while (i < class_close_index) {
    const Token& t = Tok(i);
    if (t.text == "{") {
      i = MatchForward(i, "{", "}", class_close_index) + 1;
      stmt_begin = i;
      continue;
    }
    if (t.text == ";") {
      stmt_begin = i + 1;
      ++i;
      continue;
    }
    if (t.text.rfind("LBSQ_GUARDED_BY", 0) == 0 && Tok(i + 1).text == "(" &&
        Tok(i - 1).is_ident) {
      std::vector<std::string> args;
      const size_t close = ParseMacroArgs(i + 1, class_close_index, &args);
      if (!args.empty() && !args[0].empty()) {
        info.guarded[Tok(i - 1).text] = args[0];
      }
      i = close + 1;
      continue;
    }
    // A mutex member: trailing-underscore name terminated by ';' in a
    // statement whose type mentions `mutex` (std::mutex mu_;).
    if (t.is_ident && t.text.size() > 1 && t.text.back() == '_' &&
        Tok(i + 1).text == ";") {
      for (size_t j = stmt_begin; j < i; ++j) {
        if (Tok(j).text == "mutex" || Tok(j).text == "shared_mutex") {
          info.mutexes.insert(t.text);
          break;
        }
      }
      ++i;
      continue;
    }
    // A method declaration or inline definition: name '(' params ')'
    // [qualifiers / annotations] (';' | '{'). LBSQ_REQUIRES between the
    // parameter list and the terminator is the entry contract.
    if (t.is_ident && Tok(i + 1).text == "(" && !PrevIsMemberAccess(i)) {
      const size_t params_close =
          MatchForward(i + 1, "(", ")", class_close_index);
      size_t j = params_close + 1;
      while (j < class_close_index && Tok(j).text != ";" &&
             Tok(j).text != "{") {
        if (Tok(j).text.rfind("LBSQ_REQUIRES", 0) == 0 &&
            Tok(j + 1).text == "(") {
          std::vector<std::string> args;
          j = ParseMacroArgs(j + 1, class_close_index, &args);
          for (const std::string& mu : args) {
            if (!mu.empty()) info.requires_held[t.text].insert(mu);
          }
        }
        ++j;
      }
      i = j;  // resume at the ';' or '{'; the '{' branch above skips it
      continue;
    }
    ++i;
  }
}

// Flow-sensitive must-held lock analysis over one function body
// [body_open+1, body_close). The held set is a multiset (an outer
// REQUIRES plus an inner re-acquire both count); each brace scope
// records what it acquired so scope exit releases exactly that. The
// join is conservative: anything acquired inside a nested scope is not
// held after it, and an explicit unlock releases for the rest of the
// enclosing scope. Lambdas are inline blocks — they inherit the current
// held set, which is precisely the semantics of a condition_variable
// wait predicate (the lock is held whenever the predicate runs).
void Linter::AnalyzeLockDiscipline(size_t body_open, size_t body_close,
                                   const FuncCtx& ctx,
                                   const ClassInfo& info) {
  struct LockScope {
    std::vector<std::string> acquired;    // undo at scope exit
    std::vector<std::string> guard_vars;  // RAII guards declared here
  };
  std::map<std::string, int> held;
  std::map<std::string, std::vector<std::string>> guards;  // var -> mutexes
  std::set<std::string> manual;  // locked via mu_.lock(), no RAII guard
  std::vector<LockScope> scopes(1);

  for (const std::string& mu : ctx.entry_held) ++held[mu];

  auto is_held = [&](const std::string& mu) {
    auto it = held.find(mu);
    return it != held.end() && it->second > 0;
  };
  auto acquire = [&](const std::string& mu) {
    ++held[mu];
    scopes.back().acquired.push_back(mu);
  };
  // Releases one acquisition of `mu`: decrement held and drop one
  // occurrence from the innermost scope that acquired it, so the later
  // scope exit does not double-release.
  auto release = [&](const std::string& mu) {
    auto it = held.find(mu);
    if (it == held.end() || it->second == 0) return;
    --it->second;
    for (size_t s = scopes.size(); s-- > 0;) {
      auto& acq = scopes[s].acquired;
      for (size_t a = acq.size(); a-- > 0;) {
        if (acq[a] == mu) {
          acq.erase(acq.begin() + a);
          manual.erase(mu);
          return;
        }
      }
    }
  };

  for (size_t i = body_open + 1; i < body_close; ++i) {
    const Token& t = Tok(i);
    if (t.text == "{") {
      scopes.push_back({});
      continue;
    }
    if (t.text == "}") {
      if (scopes.size() > 1) {
        for (const std::string& mu : scopes.back().acquired) {
          --held[mu];
          manual.erase(mu);
        }
        for (const std::string& var : scopes.back().guard_vars) {
          guards.erase(var);
        }
        scopes.pop_back();
      }
      continue;
    }
    if (!t.is_ident) continue;

    // RAII guard construction: lock_guard/scoped_lock/unique_lock
    // [<...>] var (mu[, mu2 | std::defer_lock | std::adopt_lock ...]).
    if ((t.text == "lock_guard" || t.text == "scoped_lock" ||
         t.text == "unique_lock" || t.text == "shared_lock") &&
        !PrevIsMemberAccess(i)) {
      size_t j = SkipAngles(i + 1, body_close);
      if (j == i + 1 && Tok(j).text == "<") continue;  // unbalanced
      if (!Tok(j).is_ident || Tok(j + 1).text != "(") continue;
      const std::string var = Tok(j).text;
      std::vector<std::string> args;
      const size_t close = ParseMacroArgs(j + 1, body_close, &args);
      bool deferred = false;
      std::vector<std::string> mutexes;
      for (const std::string& arg : args) {
        if (arg == "defer_lock" || arg == "try_to_lock") {
          deferred = true;  // not (provably) held after construction
        } else if (arg == "adopt_lock") {
          // Already held by the caller; nothing to acquire, but the
          // guard now owns the release.
        } else if (!arg.empty()) {
          mutexes.push_back(arg);
        }
      }
      guards[var] = mutexes;
      scopes.back().guard_vars.push_back(var);
      if (!deferred) {
        for (const std::string& mu : mutexes) {
          if (manual.count(mu)) {
            manual.erase(mu);  // adopt: manual lock becomes RAII-owned
          } else {
            acquire(mu);
          }
        }
      }
      i = close;
      continue;
    }

    // Explicit lock()/unlock() through a guard variable or a mutex
    // member. try_lock is maybe-held: conservatively not held.
    if ((t.text == "lock" || t.text == "unlock") && PrevIsMemberAccess(i) &&
        Tok(i + 1).text == "(" && Tok(i - 2).is_ident) {
      const std::string recv = Tok(i - 2).text;
      auto g = guards.find(recv);
      if (g != guards.end()) {
        for (const std::string& mu : g->second) {
          if (t.text == "lock") {
            acquire(mu);
          } else {
            release(mu);
          }
        }
      } else if (info.mutexes.count(recv)) {
        if (t.text == "lock") {
          acquire(recv);
          manual.insert(recv);
        } else {
          release(recv);
        }
      }
      continue;
    }

    // LBSQ_ASSERT_HELD(mu): a runtime-checked claim the linter accepts
    // for the rest of the scope.
    if (t.text == "LBSQ_ASSERT_HELD" && Tok(i + 1).text == "(") {
      std::vector<std::string> args;
      const size_t close = ParseMacroArgs(i + 1, body_close, &args);
      for (const std::string& mu : args) {
        if (!mu.empty()) acquire(mu);
      }
      i = close;
      continue;
    }

    // Early return with a manually locked mutex: a leak on this path
    // (an LBSQ_ACQUIRE/RELEASE-annotated function hands locks across
    // its boundary on purpose and is exempt).
    if (t.text == "return" && !manual.empty() && !ctx.has_acquire_release) {
      Report(t.line, "guarded-access",
             "return while '" + *manual.begin() +
                 "' is locked with no RAII guard (leaks the lock on "
                 "this path)");
      continue;
    }

    // Access to a guarded member of the context class.
    auto guarded = info.guarded.find(t.text);
    if (guarded != info.guarded.end()) {
      if (PrevIsMemberAccess(i) && Tok(i - 2).text != "this") {
        continue;  // someone else's member; their class's analysis owns it
      }
      if (Tok(i - 1).text == "::") continue;
      if (!is_held(guarded->second)) {
        Report(t.line, "guarded-access",
               "'" + t.text + "' is guarded by '" + guarded->second +
                   "', which is not held here (class " + ctx.class_name +
                   ")");
      }
      continue;
    }

    // Call site of an LBSQ_REQUIRES method of the context class.
    auto req = info.requires_held.find(t.text);
    if (req != info.requires_held.end() && Tok(i + 1).text == "(" &&
        t.text != ctx.name) {
      if (PrevIsMemberAccess(i) && Tok(i - 2).text != "this") continue;
      if (Tok(i - 1).text == "::") continue;
      for (const std::string& mu : req->second) {
        if (!is_held(mu)) {
          Report(t.line, "guarded-access",
                 "call to '" + t.text + "()' requires '" + mu +
                     "' held (LBSQ_REQUIRES), but it is not held at "
                     "this call site");
        }
      }
      continue;
    }
  }

  if (!manual.empty() && !ctx.has_acquire_release) {
    Report(Tok(body_close).line, "guarded-access",
           "function ends with '" + *manual.begin() +
               "' still locked with no RAII guard");
  }
}

// Dominating-check analysis for StatusOr locals in a Status/StatusOr-
// returning function body. A value access (.value(), ->, unary *) on a
// tracked local is legal only when dominated by a check of that local
// that post-dates its latest assignment:
//   - inside an `if (x.ok() && ...)` block (no || — the disjunction
//     would not guarantee ok on entry),
//   - after an `if (!x.ok() ...)` whose body exits (return/continue/
//     break directly in the body; no && — passing a conjunction does
//     not guarantee ok),
//   - after LBSQ_RETURN_IF_ERROR(...x...) in the same scope,
//   - an x.ok() mention earlier in the same statement (ternaries,
//     short-circuit &&).
// Only locals declared with a spelled-out StatusOr<...> type are
// tracked; `auto` hides the type from a token-level analysis and is
// documented as a known hole (DESIGN.md §8).
void Linter::AnalyzeStatusFlow(size_t body_open, size_t body_close) {
  struct VarScope {
    std::map<std::string, size_t> checked;  // var -> check token index
    std::vector<std::string> declared;
  };
  std::vector<VarScope> scopes(1);
  std::set<std::string> tracked;
  std::map<std::string, size_t> last_assign;
  // var checked at token `check` while inside [begin, end] (the body of
  // a braceless `if (x.ok()) use(*x);`).
  struct Range {
    std::string var;
    size_t check, begin, end;
  };
  std::vector<Range> ranges;
  // Checks that activate when the walk reaches a token index: at a '{'
  // they seed the new scope (positive check over a braced body), at any
  // other index they join the current scope (early-exit negated check).
  std::map<size_t, std::vector<std::pair<std::string, size_t>>> at_open;
  std::map<size_t, std::vector<std::pair<std::string, size_t>>> at_index;

  auto body_exits = [&](size_t begin, size_t end) {
    int depth = 0;
    for (size_t j = begin; j < end; ++j) {
      const std::string& s = Tok(j).text;
      if (s == "{") ++depth;
      if (s == "}") --depth;
      if (depth == 0 &&
          (s == "return" || s == "continue" || s == "break")) {
        return true;
      }
    }
    return false;
  };
  auto is_checked = [&](const std::string& var, size_t use) {
    const size_t assigned = last_assign[var];
    // Same-statement mention of var.ok() (&&-guard, ternary).
    size_t stmt_begin = use;
    while (stmt_begin > body_open) {
      const std::string& s = Tok(stmt_begin - 1).text;
      if (s == ";" || s == "{" || s == "}") break;
      --stmt_begin;
    }
    for (size_t j = stmt_begin; j + 2 < use; ++j) {
      if (Tok(j).text == var && Tok(j + 1).text == "." &&
          Tok(j + 2).text == "ok" && j > assigned) {
        return true;
      }
    }
    for (size_t s = scopes.size(); s-- > 0;) {
      auto it = scopes[s].checked.find(var);
      if (it != scopes[s].checked.end() && it->second > assigned) return true;
    }
    for (const Range& r : ranges) {
      if (r.var == var && use >= r.begin && use <= r.end &&
          r.check > assigned) {
        return true;
      }
    }
    return false;
  };
  auto report_use = [&](const std::string& var, size_t use, int line) {
    if (!tracked.count(var) || is_checked(var, use)) return;
    Report(line, "status-propagation",
           "value access on StatusOr '" + var +
               "' is not dominated by an ok() check or "
               "LBSQ_RETURN_IF_ERROR since its last assignment");
  };

  for (size_t i = body_open + 1; i < body_close; ++i) {
    auto pending = at_index.find(i);
    if (pending != at_index.end()) {
      for (const auto& [var, check] : pending->second) {
        scopes.back().checked[var] = check;
      }
    }
    const Token& t = Tok(i);
    if (t.text == "{") {
      scopes.push_back({});
      auto seed = at_open.find(i);
      if (seed != at_open.end()) {
        for (const auto& [var, check] : seed->second) {
          scopes.back().checked[var] = check;
        }
      }
      continue;
    }
    if (t.text == "}") {
      if (scopes.size() > 1) {
        for (const std::string& var : scopes.back().declared) {
          tracked.erase(var);
          last_assign.erase(var);
        }
        scopes.pop_back();
      }
      continue;
    }

    // Declaration: StatusOr<...> name ( = | ( | { | ; ).
    if (t.text == "StatusOr" && !PrevIsMemberAccess(i) &&
        Tok(i + 1).text == "<") {
      const size_t j = SkipAngles(i + 1, body_close);
      const std::string& after = Tok(j + 1).text;
      if (Tok(j).is_ident &&
          (after == "=" || after == "(" || after == "{" || after == ";")) {
        const std::string var = Tok(j).text;
        tracked.insert(var);
        scopes.back().declared.push_back(var);
        last_assign[var] = j;
        i = j;
      }
      continue;
    }

    // Dominating checks from an if statement.
    if (t.text == "if" && Tok(i + 1).text == "(") {
      const size_t cond_close = MatchForward(i + 1, "(", ")", body_close);
      bool has_or = false, has_and = false;
      std::vector<std::string> positive, negated;
      for (size_t j = i + 2; j < cond_close; ++j) {
        if (Tok(j).text == "|") has_or = true;
        if (Tok(j).text == "&") has_and = true;
        if (tracked.count(Tok(j).text) && Tok(j + 1).text == "." &&
            Tok(j + 2).text == "ok") {
          if (j > i + 2 && Tok(j - 1).text == "!") {
            negated.push_back(Tok(j).text);
          } else {
            positive.push_back(Tok(j).text);
          }
        }
      }
      const size_t body_begin = cond_close + 1;
      if (Tok(body_begin).text == "{") {
        const size_t body_end =
            MatchForward(body_begin, "{", "}", body_close);
        if (!has_or) {
          for (const std::string& v : positive) at_open[body_begin].push_back({v, i});
        }
        if (!has_and && Tok(body_end + 1).text != "else" &&
            body_exits(body_begin + 1, body_end)) {
          for (const std::string& v : negated) at_index[body_end + 1].push_back({v, i});
        }
      } else {
        size_t stmt_end = body_begin;
        int depth = 0;
        while (stmt_end < body_close) {
          const std::string& s = Tok(stmt_end).text;
          if (s == "(") ++depth;
          if (s == ")") --depth;
          if (s == ";" && depth == 0) break;
          ++stmt_end;
        }
        if (!has_or) {
          for (const std::string& v : positive) {
            ranges.push_back({v, i, body_begin, stmt_end});
          }
        }
        if (!has_and && Tok(stmt_end + 1).text != "else" &&
            body_exits(body_begin, stmt_end)) {
          for (const std::string& v : negated) at_index[stmt_end + 1].push_back({v, i});
        }
      }
      continue;
    }

    // LBSQ_RETURN_IF_ERROR(...x...) checks x for the rest of the scope.
    if (t.text == "LBSQ_RETURN_IF_ERROR" && Tok(i + 1).text == "(") {
      const size_t close = MatchForward(i + 1, "(", ")", body_close);
      for (size_t j = i + 2; j < close; ++j) {
        if (tracked.count(Tok(j).text)) scopes.back().checked[Tok(j).text] = i;
      }
      i = close;
      continue;
    }

    // Re-assignment kills earlier checks (x = ...; but not x == / *x =).
    if (tracked.count(t.text) && Tok(i + 1).text == "=" &&
        Tok(i + 2).text != "=" && Tok(i - 1).text != "*" &&
        !PrevIsMemberAccess(i)) {
      last_assign[t.text] = i;
      continue;
    }

    // Value accesses.
    if (tracked.count(t.text) && !PrevIsMemberAccess(i)) {
      if (Tok(i + 1).text == "->" ||
          (Tok(i + 1).text == "." && Tok(i + 2).text == "value" &&
           Tok(i + 3).text == "(")) {
        report_use(t.text, i, t.line);
        continue;
      }
    }
    if (t.text == "*" && tracked.count(Tok(i + 1).text)) {
      // Unary deref, not multiplication: the token before '*' must not
      // be an operand (identifier, number, ')' or ']').
      const Token& prev = Tok(i - 1);
      const bool operand_before =
          (!prev.text.empty() &&
           (IsIdentChar(prev.text[0]) || prev.text == ")" ||
            prev.text == "]"));
      if (!operand_before) report_use(Tok(i + 1).text, i + 1, t.line);
      continue;
    }
  }
}

void Linter::ScanTokens() {
  const std::vector<Token>& toks = lexed_->tokens;

  // Brace-kind stack for function/namespace/class tracking.
  enum class BraceKind { kNamespace, kFunction, kClass, kOther };
  struct Scope {
    BraceKind kind;
    bool surface = false;       // function body subject to rule R1
    size_t open_index = 0;      // token index of '{'
    int open_line = 0;
    std::string name;
    FuncCtx ctx;                // populated for kFunction scopes
  };
  std::vector<Scope> stack;

  // Pending function-signature automaton (active only outside functions).
  std::string pending_name;
  int pending_line = 0;
  bool have_params = false;
  int sig_paren_depth = 0;
  // Extensions for the flow analyses: where the current declaration
  // statement began (for return-type scanning), the token index of the
  // pending function name, its qualifying class (out-of-line
  // definitions), destructor-ness, and where its parameter list closed
  // (for parsing the LBSQ_REQUIRES/ACQUIRE/RELEASE signature trailer).
  size_t pending_stmt_start = 0;
  size_t pending_name_index = 0;
  size_t pending_params_end = 0;
  std::string pending_qualifier;
  bool pending_dtor = false;
  // Last class/struct keyword seen in the current statement, for
  // classifying the next '{'.
  std::string pending_class_kw_name;
  bool pending_namespace = false;
  bool pending_class = false;
  bool pending_enum = false;

  auto in_function = [&] {
    for (const Scope& s : stack) {
      if (s.kind == BraceKind::kFunction) return true;
    }
    return false;
  };
  auto in_surface = [&] {
    for (const Scope& s : stack) {
      if (s.surface) return true;
    }
    return false;
  };
  auto reset_statement = [&] {
    pending_name.clear();
    have_params = false;
    pending_namespace = false;
    pending_class = false;
    pending_enum = false;
    pending_class_kw_name.clear();
    pending_qualifier.clear();
    pending_dtor = false;
    pending_params_end = 0;
  };
  auto enclosing_class = [&]() -> std::string {
    for (size_t s = stack.size(); s-- > 0;) {
      if (stack[s].kind == BraceKind::kClass) return stack[s].name;
    }
    return {};
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    // Line-independent token rules.
    CheckDeterminismToken(i);
    CheckBannedToken(i);
    if (in_surface()) CheckSurfaceToken(i);
    if (loop_surface_ && !collecting_) CheckLoopToken(i);
    if (is_header_ && t.text == "using" && Tok(i + 1).text == "namespace") {
      Report(t.line, "using-namespace-header",
             "`using namespace` in a header leaks into every includer");
    }

    // Scope tracking.
    if (t.text == "{") {
      Scope s;
      s.open_index = i;
      s.open_line = t.line;
      if (in_function()) {
        s.kind = BraceKind::kOther;
      } else if (pending_namespace) {
        s.kind = BraceKind::kNamespace;
      } else if (pending_enum) {
        s.kind = BraceKind::kOther;
      } else if (pending_class) {
        s.kind = BraceKind::kClass;
        s.name = pending_class_kw_name;
      } else if (have_params && !pending_name.empty()) {
        s.kind = BraceKind::kFunction;
        s.name = pending_name;
        if (lexed_->whole_file_decode_surface) {
          s.surface = true;
        } else {
          for (const char* pattern : surface_patterns_) {
            if (MatchesPattern(pending_name, pattern)) {
              s.surface = true;
              break;
            }
          }
        }
        // Flow-analysis context. The owning class is the out-of-line
        // qualifier when present, else the innermost enclosing class.
        s.ctx.name = pending_name;
        s.ctx.is_dtor = pending_dtor;
        s.ctx.class_name =
            !pending_qualifier.empty() ? pending_qualifier : enclosing_class();
        s.ctx.is_ctor = !s.ctx.is_dtor && s.ctx.name == s.ctx.class_name;
        for (size_t j = pending_stmt_start; j < pending_name_index; ++j) {
          const std::string& r = toks[j].text;
          if (r == "Status" || r == "StatusOr") s.ctx.returns_status = true;
        }
        // Signature trailer between the parameter list and this '{':
        // LBSQ_REQUIRES names mutexes held on entry; ACQUIRE/RELEASE
        // mark lock-transfer helpers whose imbalance is intentional.
        for (size_t j = pending_params_end; j < i; ++j) {
          const std::string& r = toks[j].text;
          if (r == "LBSQ_REQUIRES" && toks[j + 1].text == "(") {
            std::vector<std::string> args;
            j = ParseMacroArgs(j + 1, i, &args);
            for (const std::string& a : args) s.ctx.entry_held.insert(a);
          } else if (r == "LBSQ_ACQUIRE" || r == "LBSQ_RELEASE") {
            s.ctx.has_acquire_release = true;
          }
        }
        if (registry_) {
          auto cit = registry_->find(s.ctx.class_name);
          if (cit != registry_->end()) {
            auto rit = cit->second.requires_held.find(s.ctx.name);
            if (rit != cit->second.requires_held.end()) {
              for (const std::string& m : rit->second) {
                s.ctx.entry_held.insert(m);
              }
            }
          }
        }
      } else {
        s.kind = BraceKind::kOther;  // brace init, array init, ...
      }
      stack.push_back(s);
      reset_statement();
      pending_stmt_start = i + 1;
    } else if (t.text == "}") {
      if (!stack.empty()) {
        const Scope s = stack.back();
        stack.pop_back();
        if (s.kind == BraceKind::kClass) {
          if (collecting_) {
            CollectClassInfo(s.open_index, i, s.name);
          } else {
            CheckMemberAnnotations(s.open_index, i, s.open_line, s.name);
          }
        } else if (s.kind == BraceKind::kFunction && !collecting_) {
          if (registry_ && !s.ctx.is_ctor) {
            auto cit = registry_->find(s.ctx.class_name);
            if (cit != registry_->end() &&
                cit->second.NeedsBodyAnalysis()) {
              AnalyzeLockDiscipline(s.open_index, i, s.ctx, cit->second);
            }
          }
          if (s.ctx.returns_status) AnalyzeStatusFlow(s.open_index, i);
        }
      }
      reset_statement();
      pending_stmt_start = i + 1;
    } else if (t.text == ";" && sig_paren_depth == 0) {
      reset_statement();
      pending_stmt_start = i + 1;
    } else if (!in_function()) {
      // Function-signature automaton.
      if (t.text == "namespace") {
        pending_namespace = true;
      } else if (t.text == "class" || t.text == "struct" ||
                 t.text == "union") {
        if (Tok(i - 1).text == "enum") {
          pending_enum = true;  // enum class
        } else {
          pending_class = true;
          // The class name is the next identifier.
          if (Tok(i + 1).is_ident) pending_class_kw_name = Tok(i + 1).text;
        }
      } else if (t.text == "enum") {
        pending_enum = true;
      } else if (t.text == "(") {
        if (sig_paren_depth == 0 && !have_params && Tok(i - 1).is_ident) {
          pending_name = Tok(i - 1).text;
          pending_line = t.line;
          pending_name_index = i - 1;
          pending_dtor = false;
          pending_qualifier.clear();
          // `Cls::~Cls(` and `Cls::Name(` out-of-line qualifiers
          // ('::' and '->' are the only multi-char tokens the lexer
          // folds, so '::' is a single token here).
          size_t q = i - 1;
          if (Tok(q - 1).text == "~") {
            pending_dtor = true;
            --q;
          }
          if (Tok(q - 1).text == "::" && Tok(q - 2).is_ident) {
            pending_qualifier = Tok(q - 2).text;
          }
        }
        ++sig_paren_depth;
      } else if (t.text == ")") {
        if (sig_paren_depth > 0) --sig_paren_depth;
        if (sig_paren_depth == 0 && !pending_name.empty()) {
          if (!have_params) pending_params_end = i;
          have_params = true;  // freeze across ctor-init-lists
        }
      } else if (t.text == "=" && sig_paren_depth == 0) {
        // `= default;` / `= delete;` / variable init — not a definition.
        pending_name.clear();
        have_params = false;
      }
    }
  }
  (void)pending_line;
}

void Linter::SetupFile(const std::string& display_path) {
  path_ = display_path;
  is_header_ = HasSuffix(path_, ".h") || HasSuffix(path_, ".hpp");
  // Normalize path separators for suffix tables.
  std::string norm = path_;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  in_bench_ = norm.find("bench/") != std::string::npos;

  determinism_allowed_ = false;
  for (const char* suffix : kDeterminismAllowedSuffixes) {
    if (HasSuffix(norm, suffix)) determinism_allowed_ = true;
  }
  new_delete_allowed_ = false;
  for (const char* suffix : kNewDeleteAllowedSuffixes) {
    if (norm.find(suffix) != std::string::npos) new_delete_allowed_ = true;
  }
  surface_patterns_.clear();
  for (const SurfaceRule& s : kSurfaces) {
    if (HasSuffix(norm, s.path_suffix)) {
      surface_patterns_ = s.function_patterns;
    }
  }
  loop_surface_ = false;
  for (const char* suffix : kLoopSurfaceSuffixes) {
    if (HasSuffix(norm, suffix)) loop_surface_ = true;
  }
}

void Linter::CollectFile(const std::string& display_path,
                         const LexedFile& lexed) {
  SetupFile(display_path);
  collecting_ = true;
  lexed_ = &lexed;
  ScanTokens();
  lexed_ = nullptr;
  collecting_ = false;
}

void Linter::CheckFile(const std::string& display_path,
                       const LexedFile& lexed) {
  SetupFile(display_path);
  lexed_ = &lexed;
  if (is_header_) CheckHeaderGuard();
  ScanTokens();
  lexed_ = nullptr;
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

int Usage() {
  std::fprintf(stderr,
               "usage: lbsq_lint [--root DIR] [--json FILE] [--list-rules] "
               "[files...]\n"
               "With no files, lints src/ tools/ bench/ examples/ under "
               "--root (default: cwd).\n"
               "--json FILE additionally writes the findings as a "
               "machine-readable artifact.\n");
  return 2;
}

// Minimal JSON string escaping for the --json artifact (paths and
// messages are ASCII; control characters are not expected but handled).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteJsonArtifact(const std::string& path,
                       const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\"tool\":\"lbsq_lint\",\"count\":" << findings.size()
      << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) out << ",";
    out << "\n  {\"file\":\"" << JsonEscape(f.path) << "\",\"line\":" << f.line
        << ",\"rule\":\"" << JsonEscape(f.rule) << "\",\"message\":\""
        << JsonEscape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]}\n" : "\n]}\n");
  return static_cast<bool>(out.flush());
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::printf("%-24s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg == "--json") {
      if (i + 1 >= argc) return Usage();
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lbsq_lint: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  std::vector<std::pair<std::string, std::string>> display_and_real;
  if (files.empty()) {
    for (const char* dir : {"src", "tools", "bench", "examples"}) {
      const fs::path base = fs::path(root) / dir;
      std::error_code ec;
      if (!fs::is_directory(base, ec)) continue;
      for (auto it = fs::recursive_directory_iterator(base, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          const std::string real = it->path().string();
          // Report paths relative to the root for stable output.
          std::string display = real;
          const std::string prefix = (fs::path(root) / "").string();
          if (display.rfind(prefix, 0) == 0) display.erase(0, prefix.size());
          display_and_real.emplace_back(display, real);
        }
      }
    }
  } else {
    for (const std::string& f : files) display_and_real.emplace_back(f, f);
  }
  std::sort(display_and_real.begin(), display_and_real.end());

  // Read and lex every file once; both passes walk the same token
  // streams. Pass 1 builds the class registry (mutexes, GUARDED_BY
  // members, REQUIRES contracts) across the whole tree so that
  // out-of-line method definitions see their class's contract even when
  // it lives in a different file. Pass 2 reports.
  std::vector<std::pair<std::string, LexedFile>> lexed_files;
  bool read_error = false;
  for (const auto& [display, real] : display_and_real) {
    std::ifstream in(real, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "lbsq_lint: cannot read %s\n", real.c_str());
      read_error = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    lexed_files.emplace_back(display, Lex(buf.str()));
  }

  std::vector<Finding> findings;
  ClassRegistry registry;
  Linter linter(&findings, &registry);
  for (const auto& [display, lexed] : lexed_files) {
    linter.CollectFile(display, lexed);
  }
  for (const auto& [display, lexed] : lexed_files) {
    linter.CheckFile(display, lexed);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& f : findings) {
    std::printf("%s:%d: %s: %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "lbsq_lint: %zu finding(s)\n", findings.size());
  }
  if (!json_path.empty() && !WriteJsonArtifact(json_path, findings)) {
    std::fprintf(stderr, "lbsq_lint: cannot write %s\n", json_path.c_str());
    read_error = true;
  }
  return (findings.empty() && !read_error) ? 0 : 1;
}
