// Command-line workbench for the library: generate datasets, build a
// persistent on-disk index, and run location-based queries against it.
//
//   lbsq_cli generate --type uniform|gr|na --n 100000 --seed 7 --out pts.csv
//   lbsq_cli build    --data pts.csv --index idx.db
//   lbsq_cli stats    --index idx.db
//   lbsq_cli scrub    --index idx.db
//   lbsq_cli nn       --index idx.db --x 0.31 --y 0.74 --k 3
//   lbsq_cli window   --index idx.db --x 0.31 --y 0.74 --hx 0.02 --hy 0.02
//   lbsq_cli range    --index idx.db --x 0.31 --y 0.74 --r 0.05
//   lbsq_cli serve    --index idx.db --port 19537 --cache on [--fragments 4]
//                     [--push on|off] [--push-subs 1024]
//   lbsq_cli ping     --port 19537 [--host 127.0.0.1] [--count 5]
//   lbsq_cli info     --port 19537 [--host 127.0.0.1]
//
// `serve` exposes the index over the framed TCP protocol (src/net) on
// loopback; Ctrl-C drains gracefully. Any NetClient — `ping`,
// bench/net_loadgen, or library code — can then query it. With
// --fragments K > 1 the points are re-sharded into K spatial fragments
// served through the FragmentRouter (src/partition); `info` then shows
// per-fragment point counts, MBRs and cache hit rates. With --push on
// (the default) clients may register trajectory subscriptions
// (kSubscribe) and receive the next validity region's answer as an
// unsolicited kPush before they cross into it (src/push).
//
// The index file is self-contained: logical page 0 stores the tree meta
// and the data universe, so every later invocation can re-attach. Builds
// also write a checksum sidecar (<index>.sum); later invocations verify
// every fetched page against it and `scrub` audits the whole file, so
// on-disk corruption is reported instead of silently served.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/semantic_cache.h"
#include "core/nn_validity.h"
#include "core/range_validity.h"
#include "core/server.h"
#include "core/window_validity.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "partition/partitioned_server.h"
#include "push/push_scheduler.h"
#include "rtree/rtree.h"
#include "rtree/tree_stats.h"
#include "storage/checksummed_page_store.h"
#include "storage/file_page_manager.h"
#include "workload/datasets.h"

namespace {

using namespace lbsq;

using ArgMap = std::map<std::string, std::string>;

ArgMap ParseArgs(int argc, char** argv, int first) {
  ArgMap args;
  for (int i = first; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) != 0) {
      std::fprintf(stderr, "expected --flag, got '%s'\n", key);
      std::exit(2);
    }
    args[key + 2] = argv[i + 1];
  }
  return args;
}

std::string Require(const ArgMap& args, const std::string& key) {
  auto it = args.find(key);
  if (it == args.end()) {
    std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
    std::exit(2);
  }
  return it->second;
}

std::string GetOr(const ArgMap& args, const std::string& key,
                  const std::string& fallback) {
  auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

// ---------------------------------------------------------------------------
// generate
// ---------------------------------------------------------------------------

int CmdGenerate(const ArgMap& args) {
  const std::string type = GetOr(args, "type", "uniform");
  const auto seed = static_cast<uint64_t>(
      std::strtoull(GetOr(args, "seed", "42").c_str(), nullptr, 10));
  const size_t n = std::strtoul(GetOr(args, "n", "100000").c_str(), nullptr, 10);
  const std::string out_path = Require(args, "out");

  workload::Dataset dataset;
  if (type == "uniform") {
    dataset = workload::MakeUnitUniform(n, seed);
  } else if (type == "gr") {
    dataset = workload::MakeGrLike(seed, n);
  } else if (type == "na") {
    dataset = workload::MakeNaLike(seed, n);
  } else {
    std::fprintf(stderr, "unknown --type '%s' (uniform|gr|na)\n",
                 type.c_str());
    return 2;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "# universe " << dataset.universe.min_x << ' '
      << dataset.universe.min_y << ' ' << dataset.universe.max_x << ' '
      << dataset.universe.max_y << '\n';
  out.precision(17);
  for (const rtree::DataEntry& e : dataset.entries) {
    out << e.point.x << ',' << e.point.y << ',' << e.id << '\n';
  }
  std::printf("wrote %zu points (%s) to %s\n", dataset.entries.size(),
              type.c_str(), out_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// build / attach
// ---------------------------------------------------------------------------

bool LoadCsv(const std::string& path, workload::Dataset* dataset) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string word;
      header >> word;  // "universe"
      header >> dataset->universe.min_x >> dataset->universe.min_y >>
          dataset->universe.max_x >> dataset->universe.max_y;
      continue;
    }
    std::istringstream row(line);
    rtree::DataEntry e;
    char comma;
    row >> e.point.x >> comma >> e.point.y >> comma >> e.id;
    dataset->entries.push_back(e);
  }
  return !dataset->entries.empty();
}

// Page 0 layout: tree meta at offset 0, universe rect at offset 32.
void SaveIndexHeader(storage::PageStore* store, storage::PageId page,
                     const rtree::RTree::Meta& meta,
                     const geo::Rect& universe) {
  storage::Page header;
  meta.SerializeTo(&header, 0);
  header.WriteAt<double>(32, universe.min_x);
  header.WriteAt<double>(40, universe.min_y);
  header.WriteAt<double>(48, universe.max_x);
  header.WriteAt<double>(56, universe.max_y);
  store->Write(page, header);
}

std::string SidecarPath(const std::string& index_path) {
  return index_path + ".sum";
}

struct AttachedIndex {
  std::unique_ptr<storage::FilePageManager> file;
  std::unique_ptr<storage::ChecksummedPageStore> store;
  std::unique_ptr<rtree::RTree> tree;
  geo::Rect universe;
};

AttachedIndex Attach(const std::string& path) {
  AttachedIndex idx;
  idx.file = std::make_unique<storage::FilePageManager>(
      path, storage::FilePageManager::Mode::kOpen);
  idx.store = std::make_unique<storage::ChecksummedPageStore>(idx.file.get());
  const Status loaded = idx.store->LoadTable(SidecarPath(path));
  if (!loaded.ok()) {
    // Not fatal — pages simply cannot be verified until rebuilt — but the
    // user should know the integrity net is down.
    std::fprintf(stderr, "warning: checksum sidecar %s unusable (%s)\n",
                 SidecarPath(path).c_str(), loaded.ToString().c_str());
  }
  storage::PageStore::ClearReadError();
  storage::Page header;
  idx.store->Read(0, &header);
  const Status header_status = storage::PageStore::TakeReadError();
  if (!header_status.ok()) {
    std::fprintf(stderr, "index header page corrupt: %s\n",
                 header_status.ToString().c_str());
    std::exit(1);
  }
  const auto meta = rtree::RTree::Meta::DeserializeFrom(header, 0);
  idx.universe =
      geo::Rect(header.ReadAt<double>(32), header.ReadAt<double>(40),
                header.ReadAt<double>(48), header.ReadAt<double>(56));
  idx.tree = std::make_unique<rtree::RTree>(
      idx.store.get(), /*buffer_capacity=*/256, rtree::RTree::Options(),
      meta);
  return idx;
}

int CmdBuild(const ArgMap& args) {
  const std::string data_path = Require(args, "data");
  const std::string index_path = Require(args, "index");
  workload::Dataset dataset;
  if (!LoadCsv(data_path, &dataset)) {
    std::fprintf(stderr, "failed to load %s\n", data_path.c_str());
    return 1;
  }
  if (dataset.universe.IsEmpty()) {
    for (const rtree::DataEntry& e : dataset.entries) {
      dataset.universe = dataset.universe.ExpandedToInclude(e.point);
    }
  }
  storage::FilePageManager file(index_path,
                                storage::FilePageManager::Mode::kCreate);
  storage::ChecksummedPageStore store(&file);
  const storage::PageId header_page = store.Allocate();
  rtree::RTree tree(&store, /*buffer_capacity=*/256);
  tree.BulkLoad(dataset.entries);
  tree.buffer().FlushAll();
  SaveIndexHeader(&store, header_page, tree.meta(), dataset.universe);
  file.Sync();
  const Status saved = store.SaveTable(SidecarPath(index_path));
  if (!saved.ok()) {
    std::fprintf(stderr, "failed to write checksum sidecar: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu points into %s (%zu nodes, height %d)\n",
              tree.size(), index_path.c_str(), tree.num_nodes(),
              tree.height());
  return 0;
}

// Reads every checksummed page back and verifies it: the offline
// integrity audit for an index file that has been sitting on disk.
int CmdScrub(const ArgMap& args) {
  AttachedIndex idx = Attach(Require(args, "index"));
  const size_t bad = idx.store->Scrub();
  std::printf("scrubbed %zu pages: %zu corrupt\n", idx.file->live_pages(),
              bad);
  return bad == 0 ? 0 : 1;
}

int CmdStats(const ArgMap& args) {
  AttachedIndex idx = Attach(Require(args, "index"));
  std::printf("points:   %zu\n", idx.tree->size());
  std::printf("nodes:    %zu (%zu pages on disk)\n", idx.tree->num_nodes(),
              idx.store->live_pages());
  std::printf("height:   %d\n", idx.tree->height());
  std::printf("universe: [%g, %g] x [%g, %g]\n", idx.universe.min_x,
              idx.universe.max_x, idx.universe.min_y, idx.universe.max_y);
  std::printf("%s", rtree::CollectTreeStats(*idx.tree).ToString().c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// queries
// ---------------------------------------------------------------------------

int CmdNn(const ArgMap& args) {
  AttachedIndex idx = Attach(Require(args, "index"));
  const geo::Point q{std::strtod(Require(args, "x").c_str(), nullptr),
                     std::strtod(Require(args, "y").c_str(), nullptr)};
  const size_t k = std::strtoul(GetOr(args, "k", "1").c_str(), nullptr, 10);
  core::NnValidityEngine engine(idx.tree.get(), idx.universe);
  storage::PageStore::ClearReadError();
  const auto result = engine.Query(q, k);
  if (const Status s = storage::PageStore::TakeReadError(); !s.ok()) {
    std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
    return 1;
  }
  for (const auto& n : result.answers()) {
    std::printf("neighbor id=%u at (%.6g, %.6g), distance %.6g\n",
                n.entry.id, n.entry.point.x, n.entry.point.y, n.distance);
  }
  std::printf("validity region: %zu edges, area %.6g, |S_inf|=%zu\n",
              result.region().num_vertices(), result.region().Area(),
              result.InfluenceSetSize());
  return 0;
}

int CmdWindow(const ArgMap& args) {
  AttachedIndex idx = Attach(Require(args, "index"));
  const geo::Point q{std::strtod(Require(args, "x").c_str(), nullptr),
                     std::strtod(Require(args, "y").c_str(), nullptr)};
  const double hx = std::strtod(Require(args, "hx").c_str(), nullptr);
  const double hy = std::strtod(Require(args, "hy").c_str(), nullptr);
  core::WindowValidityEngine engine(idx.tree.get(), idx.universe);
  storage::PageStore::ClearReadError();
  const auto result = engine.Query(q, hx, hy);
  if (const Status s = storage::PageStore::TakeReadError(); !s.ok()) {
    std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%zu objects in window\n", result.result().size());
  const geo::Rect& c = result.conservative_region();
  std::printf("validity: inner rect area %.6g, %zu outer obstacles, "
              "conservative [%g, %g] x [%g, %g]\n",
              result.region().base().Area(), result.region().holes().size(),
              c.min_x, c.max_x, c.min_y, c.max_y);
  return 0;
}

int CmdRange(const ArgMap& args) {
  AttachedIndex idx = Attach(Require(args, "index"));
  const geo::Point q{std::strtod(Require(args, "x").c_str(), nullptr),
                     std::strtod(Require(args, "y").c_str(), nullptr)};
  const double r = std::strtod(Require(args, "r").c_str(), nullptr);
  core::RangeValidityEngine engine(idx.tree.get(), idx.universe);
  storage::PageStore::ClearReadError();
  const auto result = engine.Query(q, r);
  if (const Status s = storage::PageStore::TakeReadError(); !s.ok()) {
    std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%zu objects within %.6g\n", result.result().size(), r);
  std::printf("validity: %zu inner + %zu outer influence objects, "
              "conservative polygon with %zu vertices\n",
              result.inner_influencers().size(),
              result.outer_influencers().size(),
              result.conservative_region().num_vertices());
  return 0;
}

// ---------------------------------------------------------------------------
// serve / ping
// ---------------------------------------------------------------------------

// SIGINT drains the serving loop instead of killing the process: pending
// replies flush, counters print. RequestDrain is an atomic store plus a
// pipe write — both async-signal-safe.
net::NetServer* g_serving = nullptr;

void HandleSigint(int) {
  if (g_serving != nullptr) g_serving->RequestDrain();
}

int CmdServe(const ArgMap& args) {
  AttachedIndex idx = Attach(Require(args, "index"));
  const size_t fragments =
      std::strtoul(GetOr(args, "fragments", "1").c_str(), nullptr, 10);
  if (fragments == 0) {
    std::fprintf(stderr, "--fragments must be >= 1\n");
    return 2;
  }

  const std::string cache_flag = GetOr(args, "cache", "on");
  cache::CacheConfig config;
  config.max_entries =
      std::strtoul(GetOr(args, "cache-entries", "4096").c_str(), nullptr, 10);
  config.max_bytes = std::strtoul(
      GetOr(args, "cache-bytes", std::to_string(4u << 20)).c_str(), nullptr,
      10);
  if (cache_flag != "on" && cache_flag != "off") {
    std::fprintf(stderr, "unknown --cache '%s' (on|off)\n", cache_flag.c_str());
    return 2;
  }

  // Heap-allocated: g++ 12 -O2 emits a -Wmaybe-uninitialized false positive
  // for the optional<SemanticCache> member when Server lives on the stack.
  std::unique_ptr<core::Server> server;
  std::unique_ptr<partition::PartitionedServer> sharded;
  core::WireService* service = nullptr;
  if (fragments > 1) {
    // Re-shard the attached index into K in-memory fragments: pull every
    // entry out of the on-disk tree and bulk-load one tree per fragment
    // behind the FragmentRouter. The on-disk file stays untouched.
    std::vector<rtree::DataEntry> entries;
    idx.tree->WindowQuery(idx.universe, &entries);
    partition::PartitionedServerOptions popt;
    popt.fragments = fragments;
    sharded = std::make_unique<partition::PartitionedServer>(
        std::move(entries), idx.universe, popt);
    if (cache_flag == "on") sharded->EnableCache(config);
    service = sharded.get();
  } else {
    server = std::make_unique<core::Server>(idx.tree.get(), idx.universe);
    if (cache_flag == "on") server->EnableCache(config);
    service = server.get();
  }

  const std::string push_flag = GetOr(args, "push", "on");
  if (push_flag != "on" && push_flag != "off") {
    std::fprintf(stderr, "unknown --push '%s' (on|off)\n", push_flag.c_str());
    return 2;
  }

  net::NetOptions options;
  options.port = static_cast<uint16_t>(
      std::strtoul(GetOr(args, "port", "19537").c_str(), nullptr, 10));
  net::NetServer serving(service, options);
  std::unique_ptr<push::PushScheduler> pusher;
  if (push_flag == "on") {
    push::PushConfig push_config;
    push_config.max_subscriptions = std::strtoul(
        GetOr(args, "push-subs", "1024").c_str(), nullptr, 10);
    pusher = std::make_unique<push::PushScheduler>(service, push_config,
                                                   serving.mutable_stats());
    pusher->set_wake([&serving] { serving.Wake(); });
    serving.set_subscriptions(pusher.get());
  }
  if (const Status listening = serving.Listen(); !listening.ok()) {
    std::fprintf(stderr, "cannot listen: %s\n", listening.ToString().c_str());
    return 1;
  }
  g_serving = &serving;
  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);

  std::printf("serving %zu points on 127.0.0.1:%u (cache %s, push %s, %zu "
              "fragment%s) — Ctrl-C to drain\n",
              idx.tree->size(), serving.port(), cache_flag.c_str(),
              push_flag.c_str(), fragments, fragments == 1 ? "" : "s");
  std::fflush(stdout);
  serving.Run();
  g_serving = nullptr;

  const net::NetStats& stats = serving.stats();
  std::printf("drained: %llu connections (%llu clean, %llu dropped), "
              "%llu frames in, %llu out, %llu bad requests, "
              "%llu protocol errors\n",
              static_cast<unsigned long long>(stats.accepts),
              static_cast<unsigned long long>(stats.clean_closes),
              static_cast<unsigned long long>(stats.drops),
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.frames_out),
              static_cast<unsigned long long>(stats.bad_requests),
              static_cast<unsigned long long>(stats.protocol_errors));
  if (pusher) {
    std::printf("push: %llu subscribes, %llu pushes (%llu corrective), "
                "%llu revokes, %llu closed with connection\n",
                static_cast<unsigned long long>(stats.subscribes_accepted),
                static_cast<unsigned long long>(stats.pushes_sent),
                static_cast<unsigned long long>(stats.pushes_corrective),
                static_cast<unsigned long long>(stats.pushes_revoked),
                static_cast<unsigned long long>(stats.subscriptions_closed));
  }
  if (sharded ? sharded->cache_enabled() : server->cache_enabled()) {
    const cache::CacheStats cache_stats =
        sharded ? sharded->cache_stats() : server->cache_stats();
    std::printf("cache: %llu lookups, %llu hits\n",
                static_cast<unsigned long long>(cache_stats.lookups),
                static_cast<unsigned long long>(cache_stats.hits));
  }
  if (sharded) {
    const core::ServiceInfo info = sharded->info();
    for (size_t f = 0; f < info.fragments.size(); ++f) {
      const core::FragmentStat& fs = info.fragments[f];
      std::printf("fragment %zu: %llu points, mbr [%g, %g] x [%g, %g], "
                  "%llu cache hits / %llu lookups\n",
                  f, static_cast<unsigned long long>(fs.points), fs.mbr.min_x,
                  fs.mbr.max_x, fs.mbr.min_y, fs.mbr.max_y,
                  static_cast<unsigned long long>(fs.cache_hits),
                  static_cast<unsigned long long>(fs.cache_lookups));
    }
  }
  return 0;
}

int CmdPing(const ArgMap& args) {
  const std::string host = GetOr(args, "host", "127.0.0.1");
  const auto port = static_cast<uint16_t>(
      std::strtoul(Require(args, "port").c_str(), nullptr, 10));
  const size_t count =
      std::strtoul(GetOr(args, "count", "5").c_str(), nullptr, 10);

  net::NetClient client;
  if (const Status connected = client.Connect(host, port); !connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.ToString().c_str());
    return 1;
  }
  const auto info = client.Info();
  if (info.ok()) {
    std::printf("server: %llu points, universe [%g, %g] x [%g, %g], "
                "cache %s\n",
                static_cast<unsigned long long>(info->points),
                info->universe.min_x, info->universe.max_x,
                info->universe.min_y, info->universe.max_y,
                info->cache_enabled ? "on" : "off");
  }
  for (size_t i = 0; i < count; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const Status pong = client.Ping();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (!pong.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", pong.ToString().c_str());
      return 1;
    }
    std::printf("pong %zu: %.3f ms\n", i,
                std::chrono::duration<double, std::milli>(elapsed).count());
  }
  return 0;
}

// One INFO round trip, pretty-printed. Against a partitioned server this
// shows the per-fragment breakdown (point count, MBR, cache hit rate)
// that the serve-side FragmentStat list carries over the wire.
int CmdInfo(const ArgMap& args) {
  const std::string host = GetOr(args, "host", "127.0.0.1");
  const auto port = static_cast<uint16_t>(
      std::strtoul(Require(args, "port").c_str(), nullptr, 10));

  net::NetClient client;
  if (const Status connected = client.Connect(host, port); !connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.ToString().c_str());
    return 1;
  }
  const auto info = client.Info();
  if (!info.ok()) {
    std::fprintf(stderr, "info failed: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("server: %llu points, universe [%g, %g] x [%g, %g], "
              "cache %s, %zu fragment%s\n",
              static_cast<unsigned long long>(info->points),
              info->universe.min_x, info->universe.max_x,
              info->universe.min_y, info->universe.max_y,
              info->cache_enabled ? "on" : "off",
              info->fragments.empty() ? 1 : info->fragments.size(),
              info->fragments.size() > 1 ? "s" : "");
  for (size_t f = 0; f < info->fragments.size(); ++f) {
    const net::FragmentInfo& frag = info->fragments[f];
    const double rate =
        frag.cache_lookups == 0
            ? 0.0
            : static_cast<double>(frag.cache_hits) /
                  static_cast<double>(frag.cache_lookups);
    std::printf("fragment %zu: %llu points, mbr [%g, %g] x [%g, %g], "
                "cache %llu/%llu hits (%.1f%%)\n",
                f, static_cast<unsigned long long>(frag.points),
                frag.mbr.min_x, frag.mbr.max_x, frag.mbr.min_y,
                frag.mbr.max_y,
                static_cast<unsigned long long>(frag.cache_hits),
                static_cast<unsigned long long>(frag.cache_lookups),
                100.0 * rate);
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: lbsq_cli "
               "<generate|build|stats|scrub|nn|window|range|serve|ping|info> "
               "[--flag value ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  const ArgMap args = ParseArgs(argc, argv, 2);
  if (command == "generate") return CmdGenerate(args);
  if (command == "build") return CmdBuild(args);
  if (command == "stats") return CmdStats(args);
  if (command == "scrub") return CmdScrub(args);
  if (command == "nn") return CmdNn(args);
  if (command == "window") return CmdWindow(args);
  if (command == "range") return CmdRange(args);
  if (command == "serve") return CmdServe(args);
  if (command == "ping") return CmdPing(args);
  if (command == "info") return CmdInfo(args);
  Usage();
  return 2;
}
