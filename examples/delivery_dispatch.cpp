// Range-query scenario (the paper's Section-7 extension): a delivery
// courier's app keeps "all pickup points within 3 km" current while
// driving. The server ships arc-bounded validity regions; re-queries
// transmit only the result delta. We report round trips and bytes on the
// wire against the naive strategy.
//
//   ./build/examples/delivery_dispatch [num_updates]

#include <cstdio>
#include <cstdlib>

#include "core/delta.h"
#include "core/mobile_client.h"
#include "core/server.h"
#include "core/wire_format.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main(int argc, char** argv) {
  using namespace lbsq;
  const size_t updates = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;

  // 15k pickup points clustered like a metro area: 60 km x 60 km.
  const geo::Rect metro(0.0, 0.0, 60e3, 60e3);
  const workload::Dataset city = workload::MakeClustered(
      15000, metro, /*clusters=*/120, /*alpha=*/1.2, /*sigma_min=*/0.004,
      /*sigma_max=*/0.02, /*background=*/0.15, 99);

  storage::PageManager disk;
  rtree::RTree tree(&disk, 0);
  tree.BulkLoad(city.entries);
  tree.SetBufferFraction(0.1);
  core::Server server(&tree, metro);

  const double radius = 2e3;  // 2 km pickup radius
  const auto route =
      workload::MakeRandomWaypointTrajectory(city, updates, 50.0, 101);

  // Validity-region courier with delta transmission.
  size_t smart_queries = 0;
  size_t smart_bytes = 0;
  {
    core::RangeValidityResult cached;
    std::vector<rtree::DataEntry> previous;
    bool has = false;
    for (const geo::Point& p : route) {
      if (has && cached.IsValidAt(p)) continue;
      cached = server.RangeQuery(p, radius);
      ++smart_queries;
      if (has) {
        smart_bytes += core::DeltaBytes(
            core::DiffResults(previous, cached.result()));
      } else {
        smart_bytes += core::wire::EncodeRangeResult(cached).value().size();
      }
      previous = cached.result();
      has = true;
    }
  }

  // Naive courier: fresh full answer at every position update.
  size_t naive_bytes = 0;
  {
    for (const geo::Point& p : route) {
      const auto result = server.PlainWindowQuery(p, radius, radius);
      // (Refine to the disk, as a real server would.)
      size_t in_range = 0;
      for (const auto& e : result) {
        if (geo::SquaredDistance(p, e.point) <= radius * radius) ++in_range;
      }
      naive_bytes += core::wire::PlainWindowAnswerBytes(in_range);
    }
  }

  std::printf("metro dataset: %zu pickup points, %zu position updates, "
              "radius %.0f m\n\n",
              city.entries.size(), updates, radius);
  std::printf("%-28s %10s %14s\n", "strategy", "queries", "bytes shipped");
  std::printf("%-28s %10zu %14zu\n", "naive full answers", updates,
              naive_bytes);
  std::printf("%-28s %10zu %14zu\n", "validity regions + deltas",
              smart_queries, smart_bytes);
  std::printf("\nround trips cut by %.1f%%, transmission by %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(smart_queries) /
                                 static_cast<double>(updates)),
              100.0 * (1.0 - static_cast<double>(smart_bytes) /
                                 static_cast<double>(naive_bytes)));
  return 0;
}
