// Capacity planning with the Section-5 analytical models: before
// deploying location-based queries, an operator wants to know how large
// validity regions will be (how often clients re-query) without running
// the workload. This example builds the Minskew histogram for a skewed
// dataset, predicts validity-region sizes from local densities, and
// compares against measurements.
//
//   ./build/examples/region_estimation

#include <cmath>
#include <cstdio>

#include "analysis/minskew.h"
#include "analysis/models.h"
#include "core/nn_validity.h"
#include "core/window_validity.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main() {
  using namespace lbsq;

  const workload::Dataset gr = workload::MakeGrLike(5, 23268);
  storage::PageManager disk;
  rtree::RTree tree(&disk, 0);
  tree.BulkLoad(gr.entries);
  tree.SetBufferFraction(0.1);

  std::printf("GR-like dataset: %zu road points in %0.fx%.0f km\n",
              gr.entries.size(), gr.universe.width() / 1e3,
              gr.universe.height() / 1e3);

  const analysis::MinskewHistogram hist(gr.entries, gr.universe, 500, 100);
  std::printf("Minskew histogram: %zu buckets from a 100x100 grid\n\n",
              hist.buckets().size());

  core::NnValidityEngine nn_engine(&tree, gr.universe);
  analysis::NnValidityAreaCache nn_model;
  analysis::WindowValidityAreaCache window_model;
  // Small jitter keeps query locations on the road network, like the
  // paper's data-distributed workloads.
  const auto queries =
      workload::MakeDataDistributedQueries(gr, 200, 9, /*jitter=*/0.001);

  std::printf("k-NN validity region area (m^2), measured vs estimated:\n");
  std::printf("%4s %14s %14s %8s\n", "k", "measured", "estimated", "ratio");
  for (size_t k : {1u, 3u, 10u, 30u}) {
    double measured = 0.0;
    double estimated = 0.0;
    for (const geo::Point& q : queries) {
      measured += nn_engine.Query(q, k).region().Area();
      const double rho =
          hist.NnLocalDensity(q, std::max<double>(64.0, 4.0 * k));
      estimated += nn_model.Get(k, rho);
    }
    measured /= static_cast<double>(queries.size());
    estimated /= static_cast<double>(queries.size());
    std::printf("%4zu %14.4g %14.4g %8.2f\n", k, measured, estimated,
                estimated / measured);
  }

  core::WindowValidityEngine window_engine(&tree, gr.universe);
  std::printf("\nwindow validity region area (m^2), measured vs estimated:\n");
  std::printf("%10s %14s %14s %8s\n", "qs (km^2)", "measured", "estimated",
              "ratio");
  for (double qs_km2 : {100.0, 1000.0, 10000.0}) {
    const double side = std::sqrt(qs_km2) * 1e3;  // square window, meters
    double measured = 0.0;
    double estimated = 0.0;
    for (const geo::Point& q : queries) {
      measured += window_engine.Query(q, side / 2, side / 2).region().Area();
      const double rho = hist.WindowBoundaryDensity(
          geo::Rect::Centered(q, side / 2, side / 2));
      if (rho > 0.0) estimated += window_model.Get(side, side, rho);
    }
    measured /= static_cast<double>(queries.size());
    estimated /= static_cast<double>(queries.size());
    std::printf("%10.0f %14.4g %14.4g %8.2f\n", qs_km2, measured, estimated,
                estimated / measured);
  }
  return 0;
}
