// Quickstart: build a spatial index, run one location-based nearest-
// neighbor query and one location-based window query, and inspect the
// validity regions that make client-side result caching possible.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/nn_validity.h"
#include "core/window_validity.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"
#include "workload/datasets.h"

int main() {
  using namespace lbsq;

  // 1. Generate 100k points in the unit square and bulk-load an R*-tree
  //    backed by 4 KiB pages with an LRU buffer of 10% of the tree.
  const workload::Dataset dataset = workload::MakeUnitUniform(100000, 42);
  storage::PageManager disk;
  rtree::RTree tree(&disk, /*buffer_capacity=*/0);
  tree.BulkLoad(dataset.entries);
  tree.SetBufferFraction(0.1);
  std::printf("index: %zu points, %zu nodes, height %d\n", tree.size(),
              tree.num_nodes(), tree.height());

  // 2. Location-based 1-NN query: result + validity region.
  core::NnValidityEngine nn_engine(&tree, dataset.universe);
  const geo::Point me{0.31, 0.74};
  const core::NnValidityResult nn = nn_engine.Query(me, 1);
  std::printf("\n1-NN of (%.2f, %.2f): object %u at distance %.5f\n", me.x,
              me.y, nn.answers()[0].entry.id, nn.answers()[0].distance);
  std::printf("validity region: %zu edges, area %.3g, influence set %zu\n",
              nn.region().num_vertices(), nn.region().Area(),
              nn.InfluenceSetSize());
  std::printf("server work: %zu TPNN queries (%zu discovered, %zu "
              "confirmed)\n",
              nn_engine.stats().tpnn_queries,
              nn_engine.stats().discovering_queries,
              nn_engine.stats().confirming_queries);

  // 3. The client-side check: no server contact while inside the region.
  const geo::Point nearby{me.x + 0.001, me.y - 0.001};
  const geo::Point far_away{me.x + 0.2, me.y};
  std::printf("still valid at (%.3f, %.3f)? %s\n", nearby.x, nearby.y,
              nn.IsValidAt(nearby) ? "yes - reuse cached result"
                                   : "no - re-query");
  std::printf("still valid at (%.3f, %.3f)? %s\n", far_away.x, far_away.y,
              nn.IsValidAt(far_away) ? "yes - reuse cached result"
                                     : "no - re-query");

  // 4. Location-based window query: all objects in a moving viewport.
  core::WindowValidityEngine window_engine(&tree, dataset.universe);
  const core::WindowValidityResult window =
      window_engine.Query(me, /*hx=*/0.02, /*hy=*/0.02);
  std::printf("\nwindow 0.04x0.04 around me: %zu objects\n",
              window.result().size());
  std::printf("inner influence objects: %zu, outer: %zu\n",
              window.inner_influencers().size(),
              window.outer_influencers().size());
  const geo::Rect cons = window.conservative_region();
  std::printf("conservative validity rectangle: [%.4f, %.4f] x [%.4f, %.4f]"
              " (area %.3g)\n",
              cons.min_x, cons.max_x, cons.min_y, cons.max_y, cons.Area());
  return 0;
}
