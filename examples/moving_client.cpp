// The paper's motivating scenario, end to end: a mobile user drives
// through a city asking "which restaurant is closest to me right now?"
// at every position update. We compare three client strategies:
//
//   naive      - re-query the server at every update (the conventional
//                approach the introduction argues against);
//   sr01       - the Song-Roussopoulos m-NN cache [SR01] (Section 2);
//   validity   - this paper: re-query only after leaving the validity
//                region returned with the previous answer.
//
// Output: server queries, node/page accesses per strategy over the same
// random-waypoint trajectory.
//
//   ./build/examples/moving_client [num_updates]

#include <cstdio>
#include <cstdlib>

#include "baselines/sr01.h"
#include "core/mobile_client.h"
#include "core/server.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace {

struct Tally {
  size_t server_queries = 0;
  uint64_t node_accesses = 0;
  uint64_t page_accesses = 0;
};

void PrintRow(const char* name, const Tally& tally, size_t updates) {
  std::printf("%-10s %10zu %14.1f%% %14llu %14llu\n", name,
              tally.server_queries,
              100.0 * static_cast<double>(tally.server_queries) /
                  static_cast<double>(updates),
              static_cast<unsigned long long>(tally.node_accesses),
              static_cast<unsigned long long>(tally.page_accesses));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbsq;
  const size_t updates = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

  const workload::Dataset dataset = workload::MakeUnitUniform(50000, 7);
  const auto trajectory = workload::MakeRandomWaypointTrajectory(
      dataset, updates, /*step=*/0.0008, 11);
  std::printf("50k restaurants, %zu position updates of length %.4f\n\n",
              updates, 0.0008);

  auto run = [&](auto&& step_fn) {
    storage::PageManager disk;
    rtree::RTree tree(&disk, 0);
    tree.BulkLoad(dataset.entries);
    tree.SetBufferFraction(0.1);
    tree.buffer().ResetCounters();
    tree.disk().ResetCounters();
    Tally tally;
    step_fn(tree, &tally);
    tally.node_accesses = tree.buffer().logical_accesses();
    tally.page_accesses = tree.disk().read_count();
    return tally;
  };

  const Tally naive = run([&](rtree::RTree& tree, Tally* tally) {
    core::Server server(&tree, dataset.universe);
    core::MobileNnClient client(&server, 1,
                                core::MobileNnClient::Mode::kAlwaysQuery);
    for (const geo::Point& p : trajectory) client.MoveTo(p);
    tally->server_queries = client.server_queries();
  });

  const Tally sr01 = run([&](rtree::RTree& tree, Tally* tally) {
    baselines::Sr01Client client(&tree, /*k=*/1, /*m=*/8);
    for (const geo::Point& p : trajectory) client.MoveTo(p);
    tally->server_queries = client.server_queries();
  });

  const Tally validity = run([&](rtree::RTree& tree, Tally* tally) {
    core::Server server(&tree, dataset.universe);
    core::MobileNnClient client(&server, 1);
    for (const geo::Point& p : trajectory) client.MoveTo(p);
    tally->server_queries = client.server_queries();
  });

  std::printf("%-10s %10s %15s %14s %14s\n", "strategy", "queries",
              "of updates", "node accesses", "page accesses");
  PrintRow("naive", naive, updates);
  PrintRow("sr01(m=8)", sr01, updates);
  PrintRow("validity", validity, updates);

  std::printf("\nvalidity regions answered %.1f%% of updates without any "
              "server contact.\n",
              100.0 * (1.0 - static_cast<double>(validity.server_queries) /
                                 static_cast<double>(updates)));
  return 0;
}
