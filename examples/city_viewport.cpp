// Domain scenario for window queries: a map application shows all
// points of interest inside the viewport around the user as they walk
// through a skewed "city" dataset (the NA-like generator, scaled down).
// The server ships each answer with its validity region; the app only
// refreshes when the user walks out of it. We also show the conservative
// rectangle a thin client could use instead of the exact region.
//
//   ./build/examples/city_viewport [num_updates]

#include <cstdio>
#include <cstdlib>

#include "core/mobile_client.h"
#include "core/server.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main(int argc, char** argv) {
  using namespace lbsq;
  const size_t updates = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;

  // 80k points of interest over a 7000 km square continent.
  const workload::Dataset city = workload::MakeNaLike(21, 80000);
  storage::PageManager disk;
  rtree::RTree tree(&disk, 0);
  tree.BulkLoad(city.entries);
  tree.SetBufferFraction(0.1);
  core::Server server(&tree, city.universe);

  // Viewport of 20 km x 12 km; walking steps of 150 m between updates.
  const double hx = 10e3, hy = 6e3;
  const auto trajectory =
      workload::MakeRandomWaypointTrajectory(city, updates, 150.0, 23);

  core::MobileWindowClient exact(&server, hx, hy);
  core::MobileWindowClient conservative(
      &server, hx, hy, core::MobileWindowClient::Mode::kConservativeRegion);
  core::MobileWindowClient naive(&server, hx, hy,
                                 core::MobileWindowClient::Mode::kAlwaysQuery);

  size_t max_in_view = 0;
  for (const geo::Point& p : trajectory) {
    max_in_view = std::max(max_in_view, exact.MoveTo(p).size());
    conservative.MoveTo(p);
    naive.MoveTo(p);
  }

  std::printf("continental dataset: %zu points, viewport %.0fx%.0f km, "
              "%zu updates\n",
              city.entries.size(), 2 * hx / 1e3, 2 * hy / 1e3, updates);
  std::printf("peak objects in view: %zu\n\n", max_in_view);
  std::printf("%-22s %10s %12s\n", "strategy", "queries", "savings");
  auto row = [&](const char* name, size_t queries) {
    std::printf("%-22s %10zu %11.1f%%\n", name, queries,
                100.0 * (1.0 - static_cast<double>(queries) /
                                   static_cast<double>(updates)));
  };
  row("naive re-query", naive.server_queries());
  row("conservative region", conservative.server_queries());
  row("exact validity region", exact.server_queries());

  // Peek at the last validity region the exact client received.
  const auto& last = exact.last_result();
  std::printf("\nlast validity region: inner rect area %.3g km^2, %zu outer "
              "obstacles, conservative rect area %.3g km^2\n",
              last.region().base().Area() / 1e6,
              last.region().holes().size(),
              last.conservative_region().Area() / 1e6);
  return 0;
}
