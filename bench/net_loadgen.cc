// Load generator for the TCP serving layer (src/net): N pipelined
// loopback connections drive the clustered hotspot workload through a
// real NetServer, with the semantic answer cache off and then on.
//
// Every reply is verified, not just counted:
//
//   cache off  each answer payload must be byte-identical to the
//              in-process Server::*QueryWire bytes for the same query
//              (precomputed before the server starts; cache-off answers
//              are order-independent, so the comparison is exact even
//              across concurrent connections);
//   cache on   a hit serves the verbatim stored bytes of whichever
//              earlier query's answer covers this one, so the payload
//              must be a member of the precomputed fresh-answer set,
//              and sampled replies are additionally decoded and checked
//              IsValidAt(query point). The strict same-order byte
//              differential for the cache-on path lives in
//              tests/net_test.cc (CacheOnSingleConnectionMatchesInProcessReplay)
//              where a single pipelined connection makes the processing
//              order deterministic.
//
// Any mismatch, protocol error, bad request, or dropped connection
// fails the run (exit 1). Rates are min-of-rounds (same reasoning as
// bench/throughput.cc: interference inflates rounds, never deflates
// them); per-request latency percentiles come from the fastest round.
//
// Output: an aligned table plus one "BENCH {...}" JSON line with net
// q/s and p50/p99 latency for both phases. Knobs: LBSQ_SCALE scales the
// dataset (default 20k points); LBSQ_CONNS sets the connection count
// (default 8, the acceptance floor).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "core/server.h"
#include "core/wire_format.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "workload/queries.h"

namespace {

using namespace lbsq;
using Clock = std::chrono::steady_clock;

constexpr size_t kPoints = 20000;
constexpr size_t kQueriesPerConn = 1024;  // unique stream per connection
constexpr size_t kCacheOnRepeats = 6;     // stream passes in the on phase
constexpr size_t kPipelineWindow = 32;    // in-flight requests per conn
constexpr size_t kValiditySampleEvery = 64;
constexpr double kMinSeconds = 0.5;  // per-phase timing floor

size_t NumConnections() {
  if (const char* env = std::getenv("LBSQ_CONNS")) {
    const size_t v = std::strtoul(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 8;
}

struct QuerySpec {
  enum class Type { kNn, kWindow, kRange };
  Type type = Type::kNn;
  geo::Point q;
  double a = 0.0;  // hx / radius
  double b = 0.0;  // hy
  uint32_t k = 0;
};

// Clustered hotspot mix, same shape as throughput.cc's cache section:
// discrete per-type parameters so nearby clients ask comparable queries.
std::vector<QuerySpec> MakeSpecs(const geo::Rect& universe, size_t count) {
  const std::vector<geo::Point> locations = workload::MakeHotspotQueries(
      universe, count, /*hotspots=*/16, /*seed=*/4711, /*sigma=*/0.005);
  std::vector<QuerySpec> specs(count);
  for (size_t i = 0; i < count; ++i) {
    QuerySpec& s = specs[i];
    s.q = locations[i];
    switch (i % 20) {
      case 12: case 13: case 14: case 15: case 16:
        s.type = QuerySpec::Type::kWindow;
        s.a = 0.01;
        s.b = 0.008;
        break;
      case 17: case 18: case 19:
        s.type = QuerySpec::Type::kRange;
        s.a = 0.01;
        break;
      default:
        s.type = QuerySpec::Type::kNn;
        s.k = 10;
        break;
    }
  }
  return specs;
}

std::vector<uint8_t> FreshWireBytes(core::Server& server,
                                    const QuerySpec& s) {
  switch (s.type) {
    case QuerySpec::Type::kNn:
      return server.NnQueryWire(s.q, s.k).value();
    case QuerySpec::Type::kWindow:
      return server.WindowQueryWire(s.q, s.a, s.b).value();
    case QuerySpec::Type::kRange:
      return server.RangeQueryWire(s.q, s.a).value();
  }
  return {};
}

// Decodes an answer and checks the validity region covers the asking
// point — the semantic guarantee a cached answer must honor.
bool AnswerValidAt(const QuerySpec& s, const std::vector<uint8_t>& payload) {
  switch (s.type) {
    case QuerySpec::Type::kNn: {
      const auto decoded = core::wire::DecodeNnResult(payload);
      return decoded.ok() && decoded->IsValidAt(s.q);
    }
    case QuerySpec::Type::kWindow: {
      const auto decoded = core::wire::DecodeWindowResult(payload);
      return decoded.ok() && decoded->IsValidAt(s.q);
    }
    case QuerySpec::Type::kRange: {
      const auto decoded = core::wire::DecodeRangeResult(payload);
      return decoded.ok() && decoded->IsValidAt(s.q);
    }
  }
  return false;
}

std::string Key(const std::vector<uint8_t>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

// One connection's work for one round: pipeline the spec slice `repeats`
// times through an open client, verifying every reply. Replies come back
// FIFO per connection, so reply j answers query j of the stream.
struct ConnRun {
  net::NetClient* client = nullptr;
  const std::vector<QuerySpec>* specs = nullptr;
  const std::vector<std::vector<uint8_t>>* fresh = nullptr;  // per spec
  const std::unordered_set<std::string>* fresh_set = nullptr;
  size_t repeats = 1;
  bool cache_on = false;
  // Outputs, reset every round:
  size_t replies = 0;
  size_t failures = 0;
  std::vector<double> latency_ms;
};

void RunConn(ConnRun* r) {
  const size_t total = r->specs->size() * r->repeats;
  r->replies = 0;
  r->failures = 0;
  r->latency_ms.clear();
  r->latency_ms.reserve(total);
  std::deque<Clock::time_point> sends;
  size_t sent = 0;
  size_t received = 0;
  while (received < total) {
    while (sent < total && sent - received < kPipelineWindow) {
      const QuerySpec& s = (*r->specs)[sent % r->specs->size()];
      StatusOr<uint32_t> id = Status::Internal("unreachable");
      switch (s.type) {
        case QuerySpec::Type::kNn:
          id = r->client->SendNn(s.q, s.k);
          break;
        case QuerySpec::Type::kWindow:
          id = r->client->SendWindow(s.q, s.a, s.b);
          break;
        case QuerySpec::Type::kRange:
          id = r->client->SendRange(s.q, s.a);
          break;
      }
      if (!id.ok()) {
        ++r->failures;
        return;
      }
      sends.push_back(Clock::now());
      ++sent;
    }
    const StatusOr<net::NetClient::Reply> reply = r->client->Receive();
    const Clock::time_point now = Clock::now();
    if (!reply.ok() || reply->type != net::FrameType::kAnswer) {
      ++r->failures;
      return;
    }
    r->latency_ms.push_back(
        std::chrono::duration<double, std::milli>(now - sends.front())
            .count());
    sends.pop_front();
    const size_t qi = received % r->specs->size();
    const QuerySpec& s = (*r->specs)[qi];
    const std::vector<uint8_t>& want = (*r->fresh)[qi];
    if (r->cache_on) {
      // Miss => fresh bytes for this query; hit => stored bytes of some
      // covering workload query. Anything else is a wire corruption.
      if (reply->payload != want &&
          r->fresh_set->count(Key(reply->payload)) == 0) {
        ++r->failures;
      } else if (received % kValiditySampleEvery == 0 &&
                 !AnswerValidAt(s, reply->payload)) {
        ++r->failures;
      }
    } else if (reply->payload != want) {
      ++r->failures;
    }
    ++received;
    ++r->replies;
  }
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct PhaseResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t replies = 0;   // across all rounds, warm-up included
  size_t failures = 0;
  double hit_rate = 0.0;
  net::NetStats stats;
};

PhaseResult RunPhase(rtree::RTree* tree, const geo::Rect& universe,
                     bool cache_on, size_t connections,
                     const std::vector<std::vector<QuerySpec>>& specs,
                     const std::vector<std::vector<std::vector<uint8_t>>>& fresh,
                     const std::unordered_set<std::string>& fresh_set) {
  // Heap-allocated: g++ 12 -O2 emits a -Wmaybe-uninitialized false
  // positive for the optional<SemanticCache> member on the stack.
  auto server = std::make_unique<core::Server>(tree, universe);
  if (cache_on) {
    cache::CacheConfig config;
    config.max_entries = 1u << 15;
    config.max_bytes = 32u << 20;
    server->EnableCache(config);
  }
  net::NetOptions options;
  options.max_connections = connections + 4;
  net::NetServer serving(server.get(), options);
  if (const Status listening = serving.Listen(); !listening.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", listening.ToString().c_str());
    std::exit(1);
  }
  std::thread loop([&serving] { serving.Run(); });

  std::vector<std::unique_ptr<net::NetClient>> clients;
  std::vector<ConnRun> runs(connections);
  for (size_t c = 0; c < connections; ++c) {
    clients.push_back(std::make_unique<net::NetClient>());
    if (const Status connected =
            clients.back()->Connect("127.0.0.1", serving.port());
        !connected.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   connected.ToString().c_str());
      std::exit(1);
    }
    ConnRun& r = runs[c];
    r.client = clients.back().get();
    r.specs = &specs[c];
    r.fresh = &fresh[c];
    r.fresh_set = &fresh_set;
    r.repeats = cache_on ? kCacheOnRepeats : 1;
    r.cache_on = cache_on;
  }
  const size_t queries_per_round =
      connections * kQueriesPerConn * (cache_on ? kCacheOnRepeats : 1);

  PhaseResult result;
  auto round = [&] {
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (ConnRun& r : runs) threads.emplace_back(RunConn, &r);
    for (std::thread& t : threads) t.join();
    for (const ConnRun& r : runs) {
      result.replies += r.replies;
      result.failures += r.failures;
    }
  };

  round();  // warm-up (and, cache on, the cache-filling pass), untimed
  double best_seconds = std::numeric_limits<double>::infinity();
  double total_seconds = 0.0;
  std::vector<double> best_latencies;
  do {
    const Clock::time_point start = Clock::now();
    round();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed < best_seconds) {
      best_seconds = elapsed;
      best_latencies.clear();
      for (const ConnRun& r : runs) {
        best_latencies.insert(best_latencies.end(), r.latency_ms.begin(),
                              r.latency_ms.end());
      }
    }
    total_seconds += elapsed;
  } while (total_seconds < kMinSeconds);

  result.qps = static_cast<double>(queries_per_round) / best_seconds;
  result.p50_ms = Percentile(best_latencies, 0.50);
  result.p99_ms = Percentile(best_latencies, 0.99);

  for (auto& client : clients) client->Close();
  serving.RequestDrain();
  loop.join();
  result.stats = serving.stats();
  if (cache_on) {
    const cache::CacheStats cache_stats = server->cache_stats();
    result.hit_rate = cache_stats.lookups == 0
                          ? 0.0
                          : static_cast<double>(cache_stats.hits) /
                                static_cast<double>(cache_stats.lookups);
  }
  return result;
}

// Server-side counters that must stay at zero for a clean run.
bool PhaseClean(const PhaseResult& r, size_t connections) {
  return r.failures == 0 && r.stats.protocol_errors == 0 &&
         r.stats.bad_requests == 0 && r.stats.query_errors == 0 &&
         r.stats.drops == 0 && r.stats.accepts == connections;
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(kPoints);
  const size_t connections = NumConnections();
  bench::Workbench wb = bench::MakeUniformBench(n, /*buffer_fraction=*/0.0);

  // Per-connection query streams plus their in-process reference bytes,
  // computed before any server thread exists (the engines share the
  // tree's buffer pool, so the reference pass must not run concurrently
  // with serving).
  std::vector<std::vector<QuerySpec>> specs(connections);
  std::vector<std::vector<std::vector<uint8_t>>> fresh(connections);
  std::unordered_set<std::string> fresh_set;
  {
    const std::vector<QuerySpec> all =
        MakeSpecs(wb.dataset.universe, connections * kQueriesPerConn);
    auto reference =
        std::make_unique<core::Server>(wb.tree.get(), wb.dataset.universe);
    for (size_t c = 0; c < connections; ++c) {
      specs[c].assign(all.begin() + c * kQueriesPerConn,
                      all.begin() + (c + 1) * kQueriesPerConn);
      fresh[c].reserve(kQueriesPerConn);
      for (const QuerySpec& s : specs[c]) {
        fresh[c].push_back(FreshWireBytes(*reference, s));
        fresh_set.insert(Key(fresh[c].back()));
      }
    }
  }

  bench::PrintTitle("Net serving over loopback (" + bench::FormatCount(n) +
                    " points, " + std::to_string(connections) +
                    " pipelined connections, window " +
                    std::to_string(kPipelineWindow) + ")");
  std::printf("%-14s %12s %10s %10s %9s\n", "configuration", "queries/s",
              "p50 ms", "p99 ms", "hit rate");

  const PhaseResult off = RunPhase(wb.tree.get(), wb.dataset.universe,
                                   /*cache_on=*/false, connections, specs,
                                   fresh, fresh_set);
  std::printf("%-14s %12.0f %10.3f %10.3f %8s\n", "net-nocache", off.qps,
              off.p50_ms, off.p99_ms, "-");
  const PhaseResult on = RunPhase(wb.tree.get(), wb.dataset.universe,
                                  /*cache_on=*/true, connections, specs,
                                  fresh, fresh_set);
  std::printf("%-14s %12.0f %10.3f %10.3f %8.1f%%\n", "net-cache", on.qps,
              on.p50_ms, on.p99_ms, on.hit_rate * 100.0);

  const size_t completed = off.replies + on.replies;
  std::printf("\ncompleted %zu queries (%zu cache-off, %zu cache-on), "
              "every reply verified\n",
              completed, off.replies, on.replies);

  bool ok = true;
  for (const auto* phase : {&off, &on}) {
    if (!PhaseClean(*phase, connections)) {
      std::printf("FAIL %s: %zu reply mismatches, %llu protocol errors, "
                  "%llu bad requests, %llu query errors, %llu drops, "
                  "%llu accepts\n",
                  phase == &off ? "net-nocache" : "net-cache",
                  phase->failures,
                  static_cast<unsigned long long>(phase->stats.protocol_errors),
                  static_cast<unsigned long long>(phase->stats.bad_requests),
                  static_cast<unsigned long long>(phase->stats.query_errors),
                  static_cast<unsigned long long>(phase->stats.drops),
                  static_cast<unsigned long long>(phase->stats.accepts));
      ok = false;
    }
  }
  const size_t per_run = connections * kQueriesPerConn * (1 + kCacheOnRepeats);
  if (per_run < 50000) {
    std::printf("FAIL: %zu queries per timed run is below the 50k floor\n",
                per_run);
    ok = false;
  }

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"name\":\"net_loadgen\",\"points\":%zu,\"connections\":%zu,"
      "\"pipeline_window\":%zu,\"queries\":%zu,"
      "\"net_nocache_qps\":%.0f,\"net_cache_qps\":%.0f,"
      "\"cache_speedup\":%.3f,\"cache_hit_rate\":%.3f,"
      "\"nocache_p50_ms\":%.3f,\"nocache_p99_ms\":%.3f,"
      "\"cache_p50_ms\":%.3f,\"cache_p99_ms\":%.3f,"
      "\"writev_calls\":%llu,\"writev_iovecs\":%llu,"
      "\"bytes_copied\":%llu,\"bytes_zero_copy\":%llu,"
      "\"verified\":%s}",
      n, connections, kPipelineWindow, completed, off.qps, on.qps,
      on.qps / off.qps, on.hit_rate, off.p50_ms, off.p99_ms, on.p50_ms,
      on.p99_ms, static_cast<unsigned long long>(on.stats.writev_calls),
      static_cast<unsigned long long>(on.stats.writev_iovecs),
      static_cast<unsigned long long>(on.stats.bytes_copied),
      static_cast<unsigned long long>(on.stats.bytes_zero_copy),
      ok ? "true" : "false");
  std::printf("\nBENCH %s\n", json);
  bench::WriteBenchArtifact("net_loadgen", json);
  return ok ? 0 : 1;
}
