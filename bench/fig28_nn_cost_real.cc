// Figure 28: server-side cost of location-based k-NN queries vs k on the
// GR-like and NA-like datasets (node accesses and page accesses with a
// 10% LRU buffer, split between the k-NN query and the TPkNN queries).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/nn_validity.h"

namespace {

using namespace lbsq;

void RunDataset(const char* name, workload::Dataset dataset) {
  bench::Workbench wb = bench::MakeBench(std::move(dataset), 0.1);
  core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  const auto queries = bench::QueryWorkload(wb);

  bench::PrintTitle(std::string("Figure 28 (") + name +
                    "): cost of location-based k-NN vs k (10% LRU)");
  std::printf("%6s | %10s %12s | %10s %12s | %6s\n", "k", "NA(query)",
              "NA(TPkNN)", "PA(query)", "PA(TPkNN)", "TPkNN");
  for (size_t k : {1u, 3u, 10u, 30u, 100u}) {
    double nn_na = 0.0, tp_na = 0.0, nn_pa = 0.0, tp_pa = 0.0, tp_count = 0.0;
    for (const geo::Point& q : queries) {
      engine.Query(q, k);
      const auto& stats = engine.stats();
      nn_na += static_cast<double>(stats.nn_node_accesses);
      tp_na += static_cast<double>(stats.tpnn_node_accesses);
      nn_pa += static_cast<double>(stats.nn_page_accesses);
      tp_pa += static_cast<double>(stats.tpnn_page_accesses);
      tp_count += static_cast<double>(stats.tpnn_queries);
    }
    const auto count = static_cast<double>(queries.size());
    std::printf("%6zu | %10.2f %12.2f | %10.3f %12.3f | %6.1f\n", k,
                nn_na / count, tp_na / count, nn_pa / count, tp_pa / count,
                tp_count / count);
  }
}

}  // namespace

int main() {
  RunDataset("GR", workload::MakeGrLike(31, bench::Scaled(23268)));
  RunDataset("NA", workload::MakeNaLike(37, bench::Scaled(569120)));
  return 0;
}
