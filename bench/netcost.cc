// Network-cost comparison: bytes transmitted from server to client over
// the same continuous-NN workload, per strategy. The paper's argument is
// that the validity region adds only the influence set (~6 objects) to
// each answer while eliminating most round trips; [SR01] ships m objects
// per query; the naive strategy ships a tiny answer at every update.
//
// Byte counts are *measured*: every answer a strategy ships is actually
// encoded (EncodePlainNnAnswer / EncodeSr01Answer / EncodeNnResult) and
// the buffer sizes summed. For naive and [SR01] the analytical formulas
// (PlainNnAnswerBytes / Sr01AnswerBytes) are reconciled against the
// measured totals — a drift of even one byte fails the run, so the
// formulas quoted in DESIGN.md cannot silently diverge from the wire.

#include <cstdio>
#include <cstdlib>

#include "baselines/sr01.h"
#include "bench/bench_util.h"
#include "core/mobile_client.h"
#include "core/server.h"
#include "core/wire_format.h"

namespace {

using namespace lbsq;

int reconcile_failures = 0;

// Prints one strategy row and checks measured == analytical (both totals
// are sums over the same per-query answers, so equality is exact).
void PrintReconciled(const char* label, size_t queries, size_t measured,
                     size_t analytical, size_t updates) {
  const long long drift = static_cast<long long>(measured) -
                          static_cast<long long>(analytical);
  std::printf("%-18s %10zu %14zu %14.1f %14zu %+6lld\n", label, queries,
              measured, static_cast<double>(measured) / updates, analytical,
              drift);
  if (drift != 0) ++reconcile_failures;
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(100000);
  const size_t updates = 4 * bench::NumQueries();
  const workload::Dataset dataset = workload::MakeUnitUniform(n, 55);
  const auto trajectory = workload::MakeRandomWaypointTrajectory(
      dataset, updates, /*step=*/0.0008, 56);

  bench::PrintTitle(
      "Network cost: bytes shipped per strategy (continuous 1-NN)");
  std::printf("dataset: %zu points, %zu updates\n\n", n, updates);
  std::printf("%-18s %10s %14s %14s %14s %6s\n", "strategy", "queries",
              "measured B", "bytes/update", "analytical", "drift");

  // Naive: a plain 1-NN answer at every update, each actually encoded.
  {
    bench::Workbench wb = bench::MakeBench(dataset, 0.1);
    core::Server server(wb.tree.get(), dataset.universe);
    core::MobileNnClient client(&server, 1,
                                core::MobileNnClient::Mode::kAlwaysQuery);
    size_t measured = 0;
    for (const geo::Point& p : trajectory) {
      measured += core::wire::EncodePlainNnAnswer(client.MoveTo(p)).size();
    }
    const size_t analytical =
        client.server_queries() * core::wire::PlainNnAnswerBytes(1);
    PrintReconciled("naive", client.server_queries(), measured, analytical,
                    updates);
  }

  // SR01 with a sweep of m: the wire ships the m cached neighbors plus
  // the two distances of the validity test whenever the server is asked.
  for (size_t m : {4u, 8u, 16u}) {
    bench::Workbench wb = bench::MakeBench(dataset, 0.1);
    baselines::Sr01Client client(wb.tree.get(), 1, m);
    size_t measured = 0;
    size_t seen_queries = 0;
    for (const geo::Point& p : trajectory) {
      client.MoveTo(p);
      if (client.server_queries() != seen_queries) {
        seen_queries = client.server_queries();
        measured +=
            core::wire::EncodeSr01Answer(client.cached_neighbors(), 1).size();
      }
    }
    const size_t analytical =
        client.server_queries() * core::wire::Sr01AnswerBytes(m);
    char label[32];
    std::snprintf(label, sizeof(label), "sr01 (m=%zu)", m);
    PrintReconciled(label, client.server_queries(), measured, analytical,
                    updates);
  }

  // Validity regions: the encoded answer including the influence set.
  // Answer sizes vary with the influence set, so there is no closed-form
  // analytical total — the measured column is the only truth here.
  auto run_validity = [&](size_t k, const char* label) {
    bench::Workbench wb = bench::MakeBench(dataset, 0.1);
    core::Server server(wb.tree.get(), dataset.universe);
    core::MobileNnClient client(&server, k);
    size_t bytes = 0;
    for (const geo::Point& p : trajectory) {
      client.MoveTo(p);
      if (!client.last_answer_was_cached()) {
        bytes += core::wire::EncodeNnResult(client.last_result()).value().size();
      }
    }
    std::printf("%-18s %10zu %14zu %14.1f %14s %6s\n", label,
                client.server_queries(), bytes,
                static_cast<double>(bytes) / updates, "-", "-");
  };
  run_validity(1, "validity region");

  // For larger k the amortization shifts: plain answers grow while the
  // influence set stays ~6 objects.
  std::printf("\nk = 4 nearest neighbors:\n");
  {
    bench::Workbench wb = bench::MakeBench(dataset, 0.1);
    core::Server server(wb.tree.get(), dataset.universe);
    core::MobileNnClient client(&server, 4,
                                core::MobileNnClient::Mode::kAlwaysQuery);
    size_t measured = 0;
    for (const geo::Point& p : trajectory) {
      measured += core::wire::EncodePlainNnAnswer(client.MoveTo(p)).size();
    }
    const size_t analytical =
        client.server_queries() * core::wire::PlainNnAnswerBytes(4);
    PrintReconciled("naive", client.server_queries(), measured, analytical,
                    updates);
  }
  run_validity(4, "validity region");

  if (reconcile_failures != 0) {
    std::printf("\nRECONCILE FAILED: %d strategy rows drifted from their "
                "analytical size formulas\n",
                reconcile_failures);
    return 1;
  }
  std::printf("\nreconcile ok: measured wire bytes match the analytical "
              "formulas exactly\n");
  return 0;
}
