// Network-cost comparison: bytes transmitted from server to client over
// the same continuous-NN workload, per strategy. The paper's argument is
// that the validity region adds only the influence set (~6 objects) to
// each answer while eliminating most round trips; [SR01] ships m objects
// per query; the naive strategy ships a tiny answer at every update.

#include <cstdio>

#include "baselines/sr01.h"
#include "bench/bench_util.h"
#include "core/mobile_client.h"
#include "core/server.h"
#include "core/wire_format.h"

namespace {

using namespace lbsq;

}  // namespace

int main() {
  const size_t n = bench::Scaled(100000);
  const size_t updates = 4 * bench::NumQueries();
  const workload::Dataset dataset = workload::MakeUnitUniform(n, 55);
  const auto trajectory = workload::MakeRandomWaypointTrajectory(
      dataset, updates, /*step=*/0.0008, 56);

  bench::PrintTitle(
      "Network cost: bytes shipped per strategy (continuous 1-NN)");
  std::printf("dataset: %zu points, %zu updates\n\n", n, updates);
  std::printf("%-18s %10s %14s %14s\n", "strategy", "queries", "total bytes",
              "bytes/update");

  // Naive: a plain 1-NN answer at every update.
  {
    bench::Workbench wb = bench::MakeBench(dataset, 0.1);
    core::Server server(wb.tree.get(), dataset.universe);
    core::MobileNnClient client(&server, 1,
                                core::MobileNnClient::Mode::kAlwaysQuery);
    for (const geo::Point& p : trajectory) client.MoveTo(p);
    const size_t bytes =
        client.server_queries() * core::wire::PlainNnAnswerBytes(1);
    std::printf("%-18s %10zu %14zu %14.1f\n", "naive", client.server_queries(),
                bytes, static_cast<double>(bytes) / updates);
  }

  // SR01 with a sweep of m.
  for (size_t m : {4u, 8u, 16u}) {
    bench::Workbench wb = bench::MakeBench(dataset, 0.1);
    baselines::Sr01Client client(wb.tree.get(), 1, m);
    for (const geo::Point& p : trajectory) client.MoveTo(p);
    const size_t bytes =
        client.server_queries() * core::wire::Sr01AnswerBytes(m);
    char label[32];
    std::snprintf(label, sizeof(label), "sr01 (m=%zu)", m);
    std::printf("%-18s %10zu %14zu %14.1f\n", label, client.server_queries(),
                bytes, static_cast<double>(bytes) / updates);
  }

  // Validity regions: the encoded answer including the influence set.
  auto run_validity = [&](size_t k, const char* label) {
    bench::Workbench wb = bench::MakeBench(dataset, 0.1);
    core::Server server(wb.tree.get(), dataset.universe);
    core::MobileNnClient client(&server, k);
    size_t bytes = 0;
    for (const geo::Point& p : trajectory) {
      client.MoveTo(p);
      if (!client.last_answer_was_cached()) {
        bytes += core::wire::EncodeNnResult(client.last_result()).value().size();
      }
    }
    std::printf("%-18s %10zu %14zu %14.1f\n", label,
                client.server_queries(), bytes,
                static_cast<double>(bytes) / updates);
  };
  run_validity(1, "validity region");

  // For larger k the amortization shifts: plain answers grow while the
  // influence set stays ~6 objects.
  std::printf("\nk = 4 nearest neighbors:\n");
  {
    bench::Workbench wb = bench::MakeBench(dataset, 0.1);
    core::Server server(wb.tree.get(), dataset.universe);
    core::MobileNnClient client(&server, 4,
                                core::MobileNnClient::Mode::kAlwaysQuery);
    for (const geo::Point& p : trajectory) client.MoveTo(p);
    const size_t bytes =
        client.server_queries() * core::wire::PlainNnAnswerBytes(4);
    std::printf("%-18s %10zu %14zu %14.1f\n", "naive",
                client.server_queries(), bytes,
                static_cast<double>(bytes) / updates);
  }
  run_validity(4, "validity region");
  return 0;
}
