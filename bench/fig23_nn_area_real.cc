// Figure 23: area of V(q) (m^2) vs k on the two skewed datasets (GR-like
// and NA-like stand-ins; see DESIGN.md). Estimates use the Section-5
// model fed with local densities from a 500-bucket Minskew histogram, as
// in the paper.

#include <algorithm>
#include <cstdio>

#include "analysis/minskew.h"
#include "analysis/models.h"
#include "bench/bench_util.h"
#include "core/nn_validity.h"

namespace {

using namespace lbsq;

void RunDataset(const char* name, workload::Dataset dataset) {
  bench::Workbench wb = bench::MakeBench(std::move(dataset), 0.1);
  const analysis::MinskewHistogram hist(wb.dataset.entries,
                                        wb.dataset.universe, 500, 100);
  core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  analysis::NnValidityAreaCache model;
  const auto queries = bench::QueryWorkload(wb);

  bench::PrintTitle(std::string("Figure 23 (") + name +
                    "): area of V(q) (m^2) vs k");
  std::printf("%6s %14s %14s\n", "k", "actual", "estimated");
  for (size_t k : {1u, 3u, 10u, 30u, 100u}) {
    double actual = 0.0;
    double estimated = 0.0;
    for (const geo::Point& q : queries) {
      actual += engine.Query(q, k).region().Area();
      const double rho =
          hist.NnLocalDensity(q, std::max<double>(64.0, 4.0 * k));
      if (rho > 0.0) estimated += model.Get(k, rho);
    }
    actual /= static_cast<double>(queries.size());
    estimated /= static_cast<double>(queries.size());
    std::printf("%6zu %14.4e %14.4e\n", k, actual, estimated);
  }
}

}  // namespace

int main() {
  RunDataset("GR", workload::MakeGrLike(31, bench::Scaled(23268)));
  RunDataset("NA", workload::MakeNaLike(37, bench::Scaled(569120)));
  return 0;
}
