// Extension experiment (Section 7 future work): incremental result
// transmission. When a client exits the validity region and re-queries,
// the server ships only the delta against the previous answer. Measures
// bytes on the wire per strategy over a moving-window workload.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/delta.h"
#include "core/window_validity.h"
#include "core/wire_format.h"

namespace {

using namespace lbsq;

}  // namespace

int main() {
  const size_t n = bench::Scaled(100000);
  const size_t updates = 4 * bench::NumQueries();
  bench::Workbench wb = bench::MakeUniformBench(n, 0.1);
  core::WindowValidityEngine engine(wb.tree.get(), wb.dataset.universe);

  bench::PrintTitle(
      "Extension: delta transmission for moving window queries "
      "(uniform, N=100k)");
  std::printf("%8s | %10s %12s %12s %12s %8s\n", "window", "requeries",
              "full bytes", "delta bytes", "overlap", "saving");
  for (double h : {0.02, 0.05, 0.1}) {
    const auto trajectory = workload::MakeRandomWaypointTrajectory(
        wb.dataset, updates, /*step=*/h / 40.0, 97);
    size_t requeries = 0;
    size_t full_bytes = 0;
    size_t delta_bytes = 0;
    double overlap = 0.0;
    std::vector<rtree::DataEntry> previous;
    core::WindowValidityResult cached;
    bool has = false;
    for (const geo::Point& p : trajectory) {
      if (has && cached.IsValidAt(p)) continue;
      const auto fresh = engine.Query(p, h, h);
      ++requeries;
      if (has) {
        const core::ResultDelta delta =
            core::DiffResults(previous, fresh.result());
        delta_bytes += core::DeltaBytes(delta);
        full_bytes += core::wire::PlainWindowAnswerBytes(
            fresh.result().size());
        const size_t changed = delta.added.size() + delta.removed.size();
        const size_t total =
            fresh.result().size() + delta.removed.size();
        overlap += total > 0 ? 1.0 - static_cast<double>(changed) /
                                         static_cast<double>(total)
                             : 1.0;
      }
      previous = fresh.result();
      cached = fresh;
      has = true;
    }
    std::printf("%8.2f | %10zu %12zu %12zu %11.1f%% %7.1f%%\n", 2 * h,
                requeries, full_bytes, delta_bytes,
                100.0 * overlap / static_cast<double>(requeries ? requeries : 1),
                full_bytes > 0
                    ? 100.0 * (1.0 - static_cast<double>(delta_bytes) /
                                         static_cast<double>(full_bytes))
                    : 0.0);
  }
  return 0;
}
