#ifndef LBSQ_BENCH_BENCH_UTIL_H_
#define LBSQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"
#include "workload/datasets.h"
#include "workload/queries.h"

// Shared plumbing for the figure-reproduction benchmarks (bench/fig*.cc).
// Each benchmark binary regenerates one figure of the paper's Section 6
// and prints the same series as an aligned table.
//
// Environment knobs:
//   LBSQ_QUERIES  - queries per workload       (default 500, the paper's)
//   LBSQ_SCALE    - multiplies dataset sizes   (default 1.0; use e.g. 0.1
//                   for a quick smoke pass)

namespace lbsq::bench {

inline size_t NumQueries() {
  if (const char* env = std::getenv("LBSQ_QUERIES")) {
    const size_t v = std::strtoul(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 500;
}

inline double Scale() {
  if (const char* env = std::getenv("LBSQ_SCALE")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline size_t Scaled(size_t n) {
  const auto scaled = static_cast<size_t>(static_cast<double>(n) * Scale());
  return scaled < 16 ? 16 : scaled;
}

// A dataset bulk-loaded into an R*-tree on a fresh simulated disk, with
// the LRU buffer sized as a fraction of the tree (0 = unbuffered) and all
// access counters reset.
struct Workbench {
  workload::Dataset dataset;
  std::unique_ptr<storage::PageManager> disk;
  std::unique_ptr<rtree::RTree> tree;
};

inline Workbench MakeBench(workload::Dataset dataset,
                           double buffer_fraction) {
  Workbench bench;
  bench.dataset = std::move(dataset);
  bench.disk = std::make_unique<storage::PageManager>();
  bench.tree = std::make_unique<rtree::RTree>(bench.disk.get(), 0);
  bench.tree->BulkLoad(bench.dataset.entries);
  if (buffer_fraction > 0.0) {
    bench.tree->SetBufferFraction(buffer_fraction);
  }
  bench.tree->buffer().ResetCounters();
  bench.disk->ResetCounters();
  return bench;
}

inline Workbench MakeUniformBench(size_t n, double buffer_fraction,
                                  uint64_t seed = 4242) {
  return MakeBench(workload::MakeUnitUniform(n, seed), buffer_fraction);
}

// Query locations distributed like the data (Section 6's workloads). The
// jitter is kept small relative to the universe so that queries land in
// populated areas even on the line-clustered GR stand-in — the paper's
// queries are drawn from the data distribution itself.
inline std::vector<geo::Point> QueryWorkload(const Workbench& bench,
                                             uint64_t seed = 9001) {
  return workload::MakeDataDistributedQueries(bench.dataset, NumQueries(),
                                              seed, /*jitter=*/0.001);
}

// Machine-readable artifacts: each bench binary writes its "BENCH"
// JSON object to BENCH_<name>.json as well as printing it, so the perf
// trajectory is tracked across PRs as files instead of living only in
// commit messages. LBSQ_BENCH_DIR picks the directory (default: the
// current one); check.sh's bench-smoke stage validates the files parse.
inline std::string BenchArtifactPath(const std::string& name) {
  std::string dir = ".";
  if (const char* env = std::getenv("LBSQ_BENCH_DIR"); env && *env) {
    dir = env;
  }
  return dir + "/BENCH_" + name + ".json";
}

inline void WriteBenchArtifact(const std::string& name,
                               const std::string& json_object) {
  const std::string path = BenchArtifactPath(name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(json_object.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

// Pretty-printers for the table output.
inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline std::string FormatCount(size_t n) {
  char buf[32];
  if (n % 1000000 == 0 && n >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%zuM", n / 1000000);
  } else if (n % 1000 == 0 && n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%zuk", n / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", n);
  }
  return buf;
}

}  // namespace lbsq::bench

#endif  // LBSQ_BENCH_BENCH_UTIL_H_
