// Figure 34: server-side cost of location-based window queries vs N on
// uniform data (qs = 0.1% of the space): node accesses and page accesses
// (10% LRU buffer), split between the result query and the outer-
// influence-object query. The paper's key observation: the buffer absorbs
// almost all of the second query, since it revisits the same region. The
// model estimate for both queries (Section 5 + [TSS00]) is printed
// alongside.

#include <cmath>
#include <cstdio>

#include "analysis/models.h"
#include "bench/bench_util.h"
#include "core/window_validity.h"

namespace {

using namespace lbsq;

}  // namespace

int main() {
  const double qs = 0.001;
  const double side = std::sqrt(qs);
  bench::PrintTitle(
      "Figure 34: cost of location-based window queries vs N "
      "(uniform, qs=0.1%, 10% LRU)");
  std::printf("%8s | %10s %10s | %10s %10s | %10s %10s\n", "N", "NA(res)",
              "NA(inf)", "PA(res)", "PA(inf)", "est NA1", "est NA2");
  for (size_t n : {10000u, 30000u, 100000u, 300000u, 1000000u}) {
    const size_t scaled = bench::Scaled(n);
    bench::Workbench wb = bench::MakeUniformBench(scaled, 0.1);
    const analysis::RTreeCostModel model =
        analysis::RTreeCostModel::FromTree(*wb.tree, wb.dataset.universe);
    wb.tree->buffer().ResetCounters();
    wb.disk->ResetCounters();
    core::WindowValidityEngine engine(wb.tree.get(), wb.dataset.universe);
    const auto queries = bench::QueryWorkload(wb);
    double na1 = 0.0, na2 = 0.0, pa1 = 0.0, pa2 = 0.0;
    for (const geo::Point& q : queries) {
      engine.Query(q, side / 2, side / 2);
      const auto& stats = engine.stats();
      na1 += static_cast<double>(stats.result_node_accesses);
      na2 += static_cast<double>(stats.influence_node_accesses);
      pa1 += static_cast<double>(stats.result_page_accesses);
      pa2 += static_cast<double>(stats.influence_page_accesses);
    }
    const auto count = static_cast<double>(queries.size());
    std::printf("%8s | %10.2f %10.2f | %10.3f %10.3f | %10.2f %10.2f\n",
                bench::FormatCount(scaled).c_str(), na1 / count, na2 / count,
                pa1 / count, pa2 / count,
                model.EstimateWindowNodeAccesses(side, side),
                model.EstimateInfluenceQueryNodeAccesses(
                    side, side, static_cast<double>(scaled)));
  }
  return 0;
}
