// Figure 26: |S_inf| vs k on the GR-like and NA-like datasets. Shapes
// should match Figure 25b: ~6 influence objects at k = 1, declining
// toward ~4 as objects start contributing multiple edges.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/nn_validity.h"

namespace {

using namespace lbsq;

void RunDataset(const char* name, workload::Dataset dataset) {
  bench::Workbench wb = bench::MakeBench(std::move(dataset), 0.1);
  core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  const auto queries = bench::QueryWorkload(wb);

  bench::PrintTitle(std::string("Figure 26 (") + name + "): |S_inf| vs k");
  std::printf("%6s %12s\n", "k", "|S_inf|");
  for (size_t k : {1u, 3u, 10u, 30u, 100u}) {
    double total = 0.0;
    for (const geo::Point& q : queries) {
      total += static_cast<double>(engine.Query(q, k).InfluenceSetSize());
    }
    std::printf("%6zu %12.2f\n", k,
                total / static_cast<double>(queries.size()));
  }
}

}  // namespace

int main() {
  RunDataset("GR", workload::MakeGrLike(31, bench::Scaled(23268)));
  RunDataset("NA", workload::MakeNaLike(37, bench::Scaled(569120)));
  return 0;
}
