// Ablation: index-construction choices. DESIGN.md substitutes STR bulk
// loading (fill 0.7) for the paper's insertion-built R*-trees; this
// experiment quantifies the difference: window-query and validity-query
// node accesses for insertion-built trees vs bulk-loaded trees at
// several fill factors.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/nn_validity.h"
#include "rtree/rtree.h"
#include "storage/page_manager.h"

namespace {

using namespace lbsq;

struct Measured {
  double window_na = 0.0;
  double validity_na = 0.0;
  size_t nodes = 0;
};

Measured Run(rtree::RTree& tree, const workload::Dataset& dataset) {
  tree.SetBufferFraction(0.1);
  tree.buffer().ResetCounters();
  core::NnValidityEngine engine(&tree, dataset.universe);
  const auto queries =
      workload::MakeDataDistributedQueries(dataset, bench::NumQueries(), 13);
  Measured out;
  out.nodes = tree.num_nodes();
  const double side = std::sqrt(0.001);
  for (const geo::Point& q : queries) {
    tree.buffer().ResetCounters();
    std::vector<rtree::DataEntry> result;
    tree.WindowQuery(geo::Rect::Centered(q, side / 2, side / 2), &result);
    out.window_na += static_cast<double>(tree.buffer().logical_accesses());
    engine.Query(q, 1);
    out.validity_na +=
        static_cast<double>(engine.stats().nn_node_accesses +
                            engine.stats().tpnn_node_accesses);
  }
  const auto count = static_cast<double>(queries.size());
  out.window_na /= count;
  out.validity_na /= count;
  return out;
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(50000);
  const workload::Dataset dataset = workload::MakeUnitUniform(n, 21);

  bench::PrintTitle("Ablation: index construction (N=50k uniform)");
  std::printf("%-22s %8s %12s %14s\n", "construction", "nodes", "window NA",
              "validity NA");

  for (double fill : {0.5, 0.7, 0.9, 1.0}) {
    storage::PageManager disk;
    rtree::RTree tree(&disk, 0);
    tree.BulkLoad(dataset.entries, fill);
    const Measured m = Run(tree, dataset);
    char label[32];
    std::snprintf(label, sizeof(label), "STR bulk load %0.0f%%", fill * 100);
    std::printf("%-22s %8zu %12.2f %14.2f\n", label, m.nodes, m.window_na,
                m.validity_na);
  }
  {
    storage::PageManager disk;
    rtree::RTree tree(&disk, 256);  // buffered build, counters reset after
    for (const rtree::DataEntry& e : dataset.entries) {
      tree.Insert(e.point, e.id);
    }
    const Measured m = Run(tree, dataset);
    std::printf("%-22s %8zu %12.2f %14.2f\n", "R* insertion", m.nodes,
                m.window_na, m.validity_na);
  }
  return 0;
}
