// Ablation: sensitivity of the paper's headline cost claim to the LRU
// buffer size. Figure 27's "TPNN overhead is absorbed by the buffer"
// depends on the 10% buffer; this sweep shows page accesses per
// location-based 1-NN query as the buffer shrinks to nothing.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/nn_validity.h"

namespace {

using namespace lbsq;

}  // namespace

int main() {
  const size_t n = bench::Scaled(100000);
  bench::PrintTitle(
      "Ablation: buffer fraction vs page accesses (1-NN validity, N=100k)");
  std::printf("%8s | %10s %12s | %12s\n", "buffer", "PA(query)", "PA(TPNN)",
              "NA total");
  for (double fraction : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5}) {
    bench::Workbench wb = bench::MakeUniformBench(n, fraction);
    core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
    const auto queries = bench::QueryWorkload(wb);
    double nn_pa = 0.0, tp_pa = 0.0, na = 0.0;
    for (const geo::Point& q : queries) {
      engine.Query(q, 1);
      nn_pa += static_cast<double>(engine.stats().nn_page_accesses);
      tp_pa += static_cast<double>(engine.stats().tpnn_page_accesses);
      na += static_cast<double>(engine.stats().nn_node_accesses +
                                engine.stats().tpnn_node_accesses);
    }
    const auto count = static_cast<double>(queries.size());
    std::printf("%7.0f%% | %10.2f %12.2f | %12.2f\n", fraction * 100.0,
                nn_pa / count, tp_pa / count, na / count);
  }
  return 0;
}
