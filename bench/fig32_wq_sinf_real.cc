// Figure 32: window-query influence-set size (inner/outer split) vs
// window size qs on the GR-like and NA-like datasets.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/window_validity.h"

namespace {

using namespace lbsq;

void RunDataset(const char* name, workload::Dataset dataset) {
  bench::Workbench wb = bench::MakeBench(std::move(dataset), 0.1);
  core::WindowValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  const auto queries = bench::QueryWorkload(wb);

  bench::PrintTitle(std::string("Figure 32 (") + name +
                    "): window |S_inf| vs qs (km^2)");
  std::printf("%10s %10s %10s %10s\n", "qs (km^2)", "inner", "outer",
              "total");
  for (double qs_km2 : {100.0, 300.0, 1000.0, 3000.0, 10000.0}) {
    const double side = std::sqrt(qs_km2) * 1e3;
    double inner = 0.0;
    double outer = 0.0;
    for (const geo::Point& q : queries) {
      const auto result = engine.Query(q, side / 2, side / 2);
      inner += static_cast<double>(result.inner_influencers().size());
      outer += static_cast<double>(result.outer_influencers().size());
    }
    const auto count = static_cast<double>(queries.size());
    std::printf("%10.0f %10.2f %10.2f %10.2f\n", qs_km2, inner / count,
                outer / count, (inner + outer) / count);
  }
}

}  // namespace

int main() {
  RunDataset("GR", workload::MakeGrLike(31, bench::Scaled(23268)));
  RunDataset("NA", workload::MakeNaLike(37, bench::Scaled(569120)));
  return 0;
}
