// Figure 27: server-side cost of location-based 1-NN queries on uniform
// data vs N — (a) node accesses split between the initial NN query and
// the TPNN queries (no buffer effect on NA), (b) page accesses with an
// LRU buffer of 10% of the R-tree. The paper reports the TPNN component
// at ~12x the NN query in NA but mostly absorbed by the buffer in PA.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/nn_validity.h"

namespace {

using namespace lbsq;

struct CostRow {
  double nn_na = 0.0;
  double tpnn_na = 0.0;
  double nn_pa = 0.0;
  double tpnn_pa = 0.0;
};

CostRow Measure(size_t n, size_t k) {
  bench::Workbench wb = bench::MakeUniformBench(n, 0.1);
  core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  const auto queries = bench::QueryWorkload(wb);
  CostRow row;
  for (const geo::Point& q : queries) {
    engine.Query(q, k);
    const auto& stats = engine.stats();
    row.nn_na += static_cast<double>(stats.nn_node_accesses);
    row.tpnn_na += static_cast<double>(stats.tpnn_node_accesses);
    row.nn_pa += static_cast<double>(stats.nn_page_accesses);
    row.tpnn_pa += static_cast<double>(stats.tpnn_page_accesses);
  }
  const auto count = static_cast<double>(queries.size());
  row.nn_na /= count;
  row.tpnn_na /= count;
  row.nn_pa /= count;
  row.tpnn_pa /= count;
  return row;
}

}  // namespace

int main() {
  bench::PrintTitle(
      "Figure 27: cost of location-based 1-NN vs N (uniform, 10% LRU)");
  std::printf("%8s | %10s %12s | %10s %12s\n", "N", "NA(query)", "NA(TPNN)",
              "PA(query)", "PA(TPNN)");
  for (size_t n : {10000u, 30000u, 100000u, 300000u, 1000000u}) {
    const size_t scaled = bench::Scaled(n);
    const CostRow row = Measure(scaled, 1);
    std::printf("%8s | %10.2f %12.2f | %10.3f %12.3f\n",
                bench::FormatCount(scaled).c_str(), row.nn_na, row.tpnn_na,
                row.nn_pa, row.tpnn_pa);
  }
  return 0;
}
