// Extension experiment (Section 7 future work): location-based *range*
// queries. Mirrors the window-query figures — validity-region area,
// influence-set size, and two-step server cost — as a function of the
// query radius, on uniform data.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/range_validity.h"

namespace {

using namespace lbsq;

}  // namespace

int main() {
  const size_t n = bench::Scaled(100000);
  bench::Workbench wb = bench::MakeUniformBench(n, 0.1);
  core::RangeValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  const auto queries = bench::QueryWorkload(wb);

  bench::PrintTitle(
      "Extension: location-based range queries vs radius (uniform, N=100k)");
  std::printf("%8s %10s %12s %8s %8s | %9s %9s\n", "radius", "|result|",
              "area V(q)", "inner", "outer", "NA(res)", "NA(inf)");
  for (double radius : {0.005, 0.01, 0.02, 0.05, 0.1}) {
    double result_size = 0.0, area = 0.0, inner = 0.0, outer = 0.0;
    double na1 = 0.0, na2 = 0.0;
    for (const geo::Point& q : queries) {
      const auto result = engine.Query(q, radius);
      result_size += static_cast<double>(result.result().size());
      area += result.region().Area(128);
      inner += static_cast<double>(result.inner_influencers().size());
      outer += static_cast<double>(result.outer_influencers().size());
      na1 += static_cast<double>(engine.stats().result_node_accesses);
      na2 += static_cast<double>(engine.stats().influence_node_accesses);
    }
    const auto count = static_cast<double>(queries.size());
    std::printf("%8.3f %10.1f %12.3e %8.2f %8.2f | %9.2f %9.2f\n", radius,
                result_size / count, area / count, inner / count,
                outer / count, na1 / count, na2 / count);
  }
  return 0;
}
