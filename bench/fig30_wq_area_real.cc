// Figure 30: area of the window-query validity region (m^2) vs window
// size qs (km^2) on the GR-like and NA-like datasets, with the Minskew-
// fed Section-5 estimate. The paper reports sizes from ~9.1e3 m^2 up to
// ~2.1e6 m^2 across this sweep.

#include <cmath>
#include <cstdio>

#include "analysis/minskew.h"
#include "analysis/models.h"
#include "bench/bench_util.h"
#include "core/window_validity.h"

namespace {

using namespace lbsq;

void RunDataset(const char* name, workload::Dataset dataset) {
  bench::Workbench wb = bench::MakeBench(std::move(dataset), 0.1);
  const analysis::MinskewHistogram hist(wb.dataset.entries,
                                        wb.dataset.universe, 500, 100);
  core::WindowValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  analysis::WindowValidityAreaCache model;
  const auto queries = bench::QueryWorkload(wb);

  bench::PrintTitle(std::string("Figure 30 (") + name +
                    "): area of V(q) (m^2) vs qs (km^2)");
  std::printf("%10s %14s %14s\n", "qs (km^2)", "actual", "estimated");
  for (double qs_km2 : {100.0, 300.0, 1000.0, 3000.0, 10000.0}) {
    const double side = std::sqrt(qs_km2) * 1e3;  // meters
    double actual = 0.0;
    double estimated = 0.0;
    for (const geo::Point& q : queries) {
      actual += engine.Query(q, side / 2, side / 2).region().Area();
      const double rho = hist.WindowBoundaryDensity(
          geo::Rect::Centered(q, side / 2, side / 2));
      if (rho > 0.0) estimated += model.Get(side, side, rho);
    }
    actual /= static_cast<double>(queries.size());
    estimated /= static_cast<double>(queries.size());
    std::printf("%10.0f %14.4e %14.4e\n", qs_km2, actual, estimated);
  }
}

}  // namespace

int main() {
  RunDataset("GR", workload::MakeGrLike(31, bench::Scaled(23268)));
  RunDataset("NA", workload::MakeNaLike(37, bench::Scaled(569120)));
  return 0;
}
