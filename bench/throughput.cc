// Aggregate query throughput of the batch server: N concurrent mobile
// clients firing a mixed plain-query workload (k-NN / window / range) at
// one shared R-tree store. Three server configurations are timed over the
// same query stream:
//
//   serial-seed   the pre-NodeView code path (KnnBestFirstLegacy /
//                 WindowQueryLegacy), one thread — the seed baseline
//   serial-view   the zero-copy NodeView path, one thread
//   batch-T       BatchServer with T worker threads over per-worker
//                 unbuffered pools (every fetch a zero-copy ReadRef)
//
// Output: an aligned table plus one machine-readable "BENCH {...}" JSON
// line with queries/second per configuration, the speedups over the
// serial seed baseline, and batch latency percentiles.
//
// Environment knobs: LBSQ_SCALE scales the dataset (default 100k
// points, bench_util.h); LBSQ_CLIENTS sets the number of concurrent
// clients (default 8000; each client contributes one query per round).

#include <algorithm>
#include <chrono>
#include <limits>
#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "core/batch_server.h"
#include "geometry/rect.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"

namespace {

using namespace lbsq;
using Clock = std::chrono::steady_clock;

constexpr size_t kPoints = 100000;
constexpr double kMinSeconds = 0.5;  // per-configuration timing floor

size_t NumClients() {
  if (const char* env = std::getenv("LBSQ_CLIENTS")) {
    const size_t v = std::strtoul(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 8000;
}

// NN-heavy mix, matching the paper's workload emphasis (nearest-neighbor
// queries are the primary location-based query class).
struct Workload {
  std::vector<core::BatchServer::NnQuery> nn;        // 60% of clients, k=10
  std::vector<core::BatchServer::WindowQuery> window;  // 25%
  std::vector<core::BatchServer::RangeQuery> range;    // 15%
  size_t total() const { return nn.size() + window.size() + range.size(); }
};

Workload MakeWorkload(const bench::Workbench& wb, size_t clients) {
  const std::vector<geo::Point> locations = bench::QueryWorkload(wb);
  std::mt19937 rng(777);
  std::uniform_real_distribution<double> extent(0.005, 0.02);
  Workload w;
  for (size_t i = 0; i < clients; ++i) {
    const geo::Point& q = locations[i % locations.size()];
    switch (i % 20) {
      case 12: case 13: case 14: case 15: case 16:
        w.window.push_back({q, extent(rng), extent(rng)});
        break;
      case 17: case 18: case 19:
        w.range.push_back({q, extent(rng)});
        break;
      default:
        w.nn.push_back({q, 10});
        break;
    }
  }
  return w;
}

// Filters a box result down to the disk of radius r (shared by all range
// implementations so every configuration does identical work).
void FilterRange(const geo::Point& c, double r,
                 std::vector<rtree::DataEntry>* result) {
  // Compare squared distances: d > r iff d^2 > r^2 for nonnegative d, r.
  const double r2 = r * r;
  result->erase(std::remove_if(result->begin(), result->end(),
                               [&](const rtree::DataEntry& e) {
                                 return geo::SquaredDistance(c, e.point) > r2;
                               }),
                result->end());
  std::sort(result->begin(), result->end(),
            [](const rtree::DataEntry& a, const rtree::DataEntry& b) {
              return a.id < b.id;
            });
}

// Runs `round` (which serves the whole workload once) repeatedly until
// the timing floor, returning queries/second of the *fastest* round.
// The minimum over many rounds estimates the uncontended rate: unrelated
// load steals whole timeslices, inflating some rounds but never
// deflating one, so the mean is biased by interference while the min is
// stable (same reasoning as benchmark --benchmark_min_time repetitions).
template <typename Fn>
double MeasureQps(size_t queries_per_round, Fn&& round) {
  round();  // warm-up, untimed
  double best_seconds = std::numeric_limits<double>::infinity();
  double total = 0.0;
  do {
    const Clock::time_point start = Clock::now();
    round();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    best_seconds = std::min(best_seconds, elapsed);
    total += elapsed;
  } while (total < kMinSeconds);
  return static_cast<double>(queries_per_round) / best_seconds;
}

// Every configuration materializes one answer per client (what a server
// returning results must do), so serial and batch runs do identical work.
double SerialQps(bench::Workbench& wb, const Workload& w, bool legacy) {
  rtree::RTree& tree = *wb.tree;
  return MeasureQps(w.total(), [&] {
    std::vector<std::vector<rtree::Neighbor>> nn(w.nn.size());
    for (size_t i = 0; i < w.nn.size(); ++i) {
      nn[i] = legacy ? rtree::KnnBestFirstLegacy(tree, w.nn[i].q, w.nn[i].k)
                     : rtree::KnnBestFirst(tree, w.nn[i].q, w.nn[i].k);
    }
    asm volatile("" : : "r,m"(nn.data()) : "memory");
    std::vector<std::vector<rtree::DataEntry>> win(w.window.size());
    for (size_t i = 0; i < w.window.size(); ++i) {
      const geo::Rect rect =
          geo::Rect::Centered(w.window[i].focus, w.window[i].hx, w.window[i].hy);
      if (legacy) {
        tree.WindowQueryLegacy(rect, &win[i]);
      } else {
        tree.WindowQuery(rect, &win[i]);
      }
    }
    asm volatile("" : : "r,m"(win.data()) : "memory");
    std::vector<std::vector<rtree::DataEntry>> rng(w.range.size());
    for (size_t i = 0; i < w.range.size(); ++i) {
      const geo::Rect rect = geo::Rect::Centered(
          w.range[i].focus, w.range[i].radius, w.range[i].radius);
      if (legacy) {
        tree.WindowQueryLegacy(rect, &rng[i]);
      } else {
        tree.WindowQuery(rect, &rng[i]);
      }
      FilterRange(w.range[i].focus, w.range[i].radius, &rng[i]);
    }
    asm volatile("" : : "r,m"(rng.data()) : "memory");
  });
}

double BatchQps(core::BatchServer& server, const Workload& w) {
  return MeasureQps(w.total(), [&] {
    auto nn = server.PlainNnBatch(w.nn);
    asm volatile("" : : "r,m"(nn.data()) : "memory");
    auto win = server.PlainWindowBatch(w.window);
    asm volatile("" : : "r,m"(win.data()) : "memory");
    auto rng = server.PlainRangeBatch(w.range);
    asm volatile("" : : "r,m"(rng.data()) : "memory");
  });
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(kPoints);
  bench::Workbench wb = bench::MakeUniformBench(n, /*buffer_fraction=*/0.0);
  const size_t clients = NumClients();
  const Workload w = MakeWorkload(wb, clients);

  bench::PrintTitle("Batch query throughput (" + bench::FormatCount(n) +
                    " points, " + bench::FormatCount(w.total()) +
                    " concurrent clients)");
  std::printf("%-14s %12s %10s\n", "configuration", "queries/s", "speedup");

  const double seed_qps = SerialQps(wb, w, /*legacy=*/true);
  std::printf("%-14s %12.0f %9.2fx\n", "serial-seed", seed_qps, 1.0);
  const double view_qps = SerialQps(wb, w, /*legacy=*/false);
  std::printf("%-14s %12.0f %9.2fx\n", "serial-view", view_qps,
              view_qps / seed_qps);

  const size_t thread_counts[] = {1, 2, 4};
  double batch_qps[3] = {0.0, 0.0, 0.0};
  core::BatchPerfStats stats4;
  for (int i = 0; i < 3; ++i) {
    core::BatchServerOptions options;
    options.num_threads = thread_counts[i];
    core::BatchServer server(wb.disk.get(), wb.tree->meta(),
                             wb.dataset.universe, options);
    batch_qps[i] = BatchQps(server, w);
    char label[32];
    std::snprintf(label, sizeof(label), "batch-%zu", thread_counts[i]);
    std::printf("%-14s %12.0f %9.2fx\n", label, batch_qps[i],
                batch_qps[i] / seed_qps);
    if (thread_counts[i] == 4) stats4 = server.perf_stats();
  }

  std::printf(
      "\nbatch-4 stats: %llu queries, %llu node accesses, "
      "%llu page accesses, %llu allocations avoided\n"
      "latency p50 %.1fus  p95 %.1fus  p99 %.1fus  max %.1fus\n",
      static_cast<unsigned long long>(stats4.queries),
      static_cast<unsigned long long>(stats4.node_accesses),
      static_cast<unsigned long long>(stats4.page_accesses),
      static_cast<unsigned long long>(stats4.allocations_avoided),
      stats4.p50_us, stats4.p95_us, stats4.p99_us, stats4.max_us);

  std::printf(
      "\nBENCH {\"name\":\"throughput\",\"points\":%zu,\"clients\":%zu,"
      "\"serial_seed_qps\":%.0f,\"serial_view_qps\":%.0f,"
      "\"batch1_qps\":%.0f,\"batch2_qps\":%.0f,\"batch4_qps\":%.0f,"
      "\"view_speedup\":%.3f,\"batch4_speedup\":%.3f,"
      "\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,\"max_us\":%.1f}\n",
      n, w.total(), seed_qps, view_qps, batch_qps[0], batch_qps[1],
      batch_qps[2], view_qps / seed_qps, batch_qps[2] / seed_qps,
      stats4.p50_us, stats4.p95_us, stats4.p99_us, stats4.max_us);
  return 0;
}
