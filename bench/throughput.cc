// Aggregate query throughput of the batch server: N concurrent mobile
// clients firing a mixed plain-query workload (k-NN / window / range) at
// one shared R-tree store. Three server configurations are timed over the
// same query stream:
//
//   serial-seed   the pre-NodeView code path (KnnBestFirstLegacy /
//                 WindowQueryLegacy), one thread — the seed baseline
//   serial-view   the zero-copy NodeView path, one thread
//   batch-T       BatchServer with T worker threads over per-worker
//                 unbuffered pools (every fetch a zero-copy ReadRef)
//
// A second section times the *wire-serving* path (full validity-region
// answers, encoded) on a clustered client population — many mobile
// clients concentrated around a few hotspots — with the semantic answer
// cache off and on, reporting the cache hit rate alongside q/s.
//
// Output: an aligned table plus one machine-readable "BENCH {...}" JSON
// line with queries/second per configuration, the speedups over the
// serial seed baseline, batch latency percentiles, and the cache
// section's q/s + hit rate. All rates are min-of-N-rounds (MeasureQps).
//
// Environment knobs: LBSQ_SCALE scales the dataset (default 100k
// points, bench_util.h); LBSQ_CLIENTS sets the number of concurrent
// clients (default 8000; each client contributes one query per round).

#include <algorithm>
#include <chrono>
#include <limits>
#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "core/batch_server.h"
#include "geometry/rect.h"
#include "rtree/knn.h"
#include "rtree/rtree.h"

namespace {

using namespace lbsq;
using Clock = std::chrono::steady_clock;

constexpr size_t kPoints = 100000;
constexpr double kMinSeconds = 0.5;  // per-configuration timing floor

size_t NumClients() {
  if (const char* env = std::getenv("LBSQ_CLIENTS")) {
    const size_t v = std::strtoul(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 8000;
}

// NN-heavy mix, matching the paper's workload emphasis (nearest-neighbor
// queries are the primary location-based query class).
struct Workload {
  std::vector<core::BatchServer::NnQuery> nn;        // 60% of clients, k=10
  std::vector<core::BatchServer::WindowQuery> window;  // 25%
  std::vector<core::BatchServer::RangeQuery> range;    // 15%
  size_t total() const { return nn.size() + window.size() + range.size(); }
};

Workload MakeWorkload(const bench::Workbench& wb, size_t clients) {
  const std::vector<geo::Point> locations = bench::QueryWorkload(wb);
  std::mt19937 rng(777);
  std::uniform_real_distribution<double> extent(0.005, 0.02);
  Workload w;
  for (size_t i = 0; i < clients; ++i) {
    const geo::Point& q = locations[i % locations.size()];
    switch (i % 20) {
      case 12: case 13: case 14: case 15: case 16:
        w.window.push_back({q, extent(rng), extent(rng)});
        break;
      case 17: case 18: case 19:
        w.range.push_back({q, extent(rng)});
        break;
      default:
        w.nn.push_back({q, 10});
        break;
    }
  }
  return w;
}

// Filters a box result down to the disk of radius r (shared by all range
// implementations so every configuration does identical work).
void FilterRange(const geo::Point& c, double r,
                 std::vector<rtree::DataEntry>* result) {
  // Compare squared distances: d > r iff d^2 > r^2 for nonnegative d, r.
  const double r2 = r * r;
  result->erase(std::remove_if(result->begin(), result->end(),
                               [&](const rtree::DataEntry& e) {
                                 return geo::SquaredDistance(c, e.point) > r2;
                               }),
                result->end());
  std::sort(result->begin(), result->end(),
            [](const rtree::DataEntry& a, const rtree::DataEntry& b) {
              return a.id < b.id;
            });
}

// Runs `round` (which serves the whole workload once) repeatedly until
// the timing floor, returning queries/second of the *fastest* round.
// The minimum over many rounds estimates the uncontended rate: unrelated
// load steals whole timeslices, inflating some rounds but never
// deflating one, so the mean is biased by interference while the min is
// stable (same reasoning as benchmark --benchmark_min_time repetitions).
template <typename Fn>
double MeasureQps(size_t queries_per_round, Fn&& round) {
  round();  // warm-up, untimed
  double best_seconds = std::numeric_limits<double>::infinity();
  double total = 0.0;
  do {
    const Clock::time_point start = Clock::now();
    round();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    best_seconds = std::min(best_seconds, elapsed);
    total += elapsed;
  } while (total < kMinSeconds);
  return static_cast<double>(queries_per_round) / best_seconds;
}

// Every configuration materializes one answer per client (what a server
// returning results must do), so serial and batch runs do identical work.
double SerialQps(bench::Workbench& wb, const Workload& w, bool legacy) {
  rtree::RTree& tree = *wb.tree;
  return MeasureQps(w.total(), [&] {
    std::vector<std::vector<rtree::Neighbor>> nn(w.nn.size());
    for (size_t i = 0; i < w.nn.size(); ++i) {
      nn[i] = legacy ? rtree::KnnBestFirstLegacy(tree, w.nn[i].q, w.nn[i].k)
                     : rtree::KnnBestFirst(tree, w.nn[i].q, w.nn[i].k);
    }
    asm volatile("" : : "r,m"(nn.data()) : "memory");
    std::vector<std::vector<rtree::DataEntry>> win(w.window.size());
    for (size_t i = 0; i < w.window.size(); ++i) {
      const geo::Rect rect =
          geo::Rect::Centered(w.window[i].focus, w.window[i].hx, w.window[i].hy);
      if (legacy) {
        tree.WindowQueryLegacy(rect, &win[i]);
      } else {
        tree.WindowQuery(rect, &win[i]);
      }
    }
    asm volatile("" : : "r,m"(win.data()) : "memory");
    std::vector<std::vector<rtree::DataEntry>> rng(w.range.size());
    for (size_t i = 0; i < w.range.size(); ++i) {
      const geo::Rect rect = geo::Rect::Centered(
          w.range[i].focus, w.range[i].radius, w.range[i].radius);
      if (legacy) {
        tree.WindowQueryLegacy(rect, &rng[i]);
      } else {
        tree.WindowQuery(rect, &rng[i]);
      }
      FilterRange(w.range[i].focus, w.range[i].radius, &rng[i]);
    }
    asm volatile("" : : "r,m"(rng.data()) : "memory");
  });
}

double BatchQps(core::BatchServer& server, const Workload& w) {
  return MeasureQps(w.total(), [&] {
    auto nn = server.PlainNnBatch(w.nn);
    asm volatile("" : : "r,m"(nn.data()) : "memory");
    auto win = server.PlainWindowBatch(w.window);
    asm volatile("" : : "r,m"(win.data()) : "memory");
    auto rng = server.PlainRangeBatch(w.range);
    asm volatile("" : : "r,m"(rng.data()) : "memory");
  });
}

// Clustered client population for the cache section: query locations
// drawn from a few Gaussian hotspots, with *discrete* per-type
// parameters so nearby clients ask comparable queries (distinct window
// extents per client would make region reuse impossible by key).
Workload MakeClusteredWorkload(const bench::Workbench& wb, size_t clients) {
  const std::vector<geo::Point> locations = workload::MakeHotspotQueries(
      wb.dataset.universe, clients, /*hotspots=*/16, /*seed=*/4711,
      /*sigma=*/0.005);
  Workload w;
  for (size_t i = 0; i < clients; ++i) {
    const geo::Point& q = locations[i];
    switch (i % 20) {
      case 12: case 13: case 14: case 15: case 16:
        w.window.push_back({q, 0.01, 0.008});
        break;
      case 17: case 18: case 19:
        w.range.push_back({q, 0.01});
        break;
      default:
        w.nn.push_back({q, 10});
        break;
    }
  }
  return w;
}

// Wire-serving rounds: full validity answers, encoded — the load the
// semantic cache absorbs. The cache persists across rounds (that is the
// point: a steady-state server), so the measured rate is the warm rate.
double WireQps(core::BatchServer& server, const Workload& w) {
  return MeasureQps(w.total(), [&] {
    auto nn = server.NnQueryBatchWire(w.nn);
    asm volatile("" : : "r,m"(nn.data()) : "memory");
    auto win = server.WindowQueryBatchWire(w.window);
    asm volatile("" : : "r,m"(win.data()) : "memory");
    auto rng = server.RangeQueryBatchWire(w.range);
    asm volatile("" : : "r,m"(rng.data()) : "memory");
  });
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(kPoints);
  bench::Workbench wb = bench::MakeUniformBench(n, /*buffer_fraction=*/0.0);
  const size_t clients = NumClients();
  const Workload w = MakeWorkload(wb, clients);

  bench::PrintTitle("Batch query throughput (" + bench::FormatCount(n) +
                    " points, " + bench::FormatCount(w.total()) +
                    " concurrent clients)");
  std::printf("%-14s %12s %10s\n", "configuration", "queries/s", "speedup");

  const double seed_qps = SerialQps(wb, w, /*legacy=*/true);
  std::printf("%-14s %12.0f %9.2fx\n", "serial-seed", seed_qps, 1.0);
  const double view_qps = SerialQps(wb, w, /*legacy=*/false);
  std::printf("%-14s %12.0f %9.2fx\n", "serial-view", view_qps,
              view_qps / seed_qps);

  const size_t thread_counts[] = {1, 2, 4};
  double batch_qps[3] = {0.0, 0.0, 0.0};
  core::BatchPerfStats stats4;
  for (int i = 0; i < 3; ++i) {
    core::BatchServerOptions options;
    options.num_threads = thread_counts[i];
    core::BatchServer server(wb.disk.get(), wb.tree->meta(),
                             wb.dataset.universe, options);
    batch_qps[i] = BatchQps(server, w);
    char label[32];
    std::snprintf(label, sizeof(label), "batch-%zu", thread_counts[i]);
    std::printf("%-14s %12.0f %9.2fx\n", label, batch_qps[i],
                batch_qps[i] / seed_qps);
    if (thread_counts[i] == 4) stats4 = server.perf_stats();
  }

  std::printf(
      "\nbatch-4 stats: %llu queries, %llu node accesses, "
      "%llu page accesses, %llu allocations avoided\n"
      "latency p50 %.1fus  p95 %.1fus  p99 %.1fus  max %.1fus\n",
      static_cast<unsigned long long>(stats4.queries),
      static_cast<unsigned long long>(stats4.node_accesses),
      static_cast<unsigned long long>(stats4.page_accesses),
      static_cast<unsigned long long>(stats4.allocations_avoided),
      stats4.p50_us, stats4.p95_us, stats4.p99_us, stats4.max_us);

  // -- Wire serving with the semantic answer cache ------------------------
  // Clustered clients, full validity-region answers encoded to wire
  // bytes; cache off vs on (one worker: on the one-core bench box any
  // speedup must come from work avoided, not parallelism).
  const Workload cw = MakeClusteredWorkload(wb, clients);
  bench::PrintTitle("Wire serving, clustered clients (semantic cache)");
  std::printf("%-14s %12s %10s %9s\n", "configuration", "queries/s",
              "speedup", "hit rate");

  double wire_qps[2] = {0.0, 0.0};
  double hit_rate = 0.0;
  for (int on = 0; on < 2; ++on) {
    core::BatchServerOptions options;
    options.num_threads = 1;
    options.cache.enabled = on != 0;
    options.cache.max_entries = 1u << 15;
    options.cache.max_bytes = 32u << 20;
    core::BatchServer server(wb.disk.get(), wb.tree->meta(),
                             wb.dataset.universe, options);
    wire_qps[on] = WireQps(server, cw);
    if (on != 0) {
      const core::BatchPerfStats stats = server.perf_stats();
      hit_rate = stats.cache.lookups == 0
                     ? 0.0
                     : static_cast<double>(stats.cache.hits) /
                           static_cast<double>(stats.cache.lookups);
    }
    std::printf("%-14s %12.0f %9.2fx %8.1f%%\n",
                on != 0 ? "wire-cache" : "wire-nocache", wire_qps[on],
                wire_qps[on] / wire_qps[0], on != 0 ? hit_rate * 100.0 : 0.0);
  }

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"name\":\"throughput\",\"points\":%zu,\"clients\":%zu,"
      "\"serial_seed_qps\":%.0f,\"serial_view_qps\":%.0f,"
      "\"batch1_qps\":%.0f,\"batch2_qps\":%.0f,\"batch4_qps\":%.0f,"
      "\"view_speedup\":%.3f,\"batch4_speedup\":%.3f,"
      "\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,\"max_us\":%.1f,"
      "\"wire_nocache_qps\":%.0f,\"wire_cache_qps\":%.0f,"
      "\"cache_speedup\":%.3f,\"cache_hit_rate\":%.3f}",
      n, w.total(), seed_qps, view_qps, batch_qps[0], batch_qps[1],
      batch_qps[2], view_qps / seed_qps, batch_qps[2] / seed_qps,
      stats4.p50_us, stats4.p95_us, stats4.p99_us, stats4.max_us,
      wire_qps[0], wire_qps[1], wire_qps[1] / wire_qps[0], hit_rate);
  std::printf("\nBENCH %s\n", json);
  bench::WriteBenchArtifact("throughput", json);
  return 0;
}
