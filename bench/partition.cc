// Partitioned-serving benchmark: q/s, per-query page cost, and churn
// cache hit rate as the dataset is sharded into K ∈ {1, 2, 4, 8} spatial
// fragments behind the FragmentRouter. The same clustered mixed stream
// (hotspot queries + Poisson-arrival inserts/deletes) is served at every
// K, in two modes:
//
//   * cache off — measures the raw router: throughput plus node/page
//     accesses per query. The best-first frontier should keep a K-way
//     router close to the single tree (most queries touch one fragment).
//   * cache on — measures sharded semantic caching under churn: each
//     update invalidates one fragment cache plus the boundary cache
//     instead of everything, so the hit rate at K > 1 must hold up
//     against the K = 1 region-scoped baseline.
//
// The total buffer-pool budget is held constant across K (split evenly
// between fragments) so page counts compare like for like.
//
// Emits BENCH_partition.json; min time of LBSQ_ROUNDS rounds (default 3).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cache/semantic_cache.h"
#include "partition/partitioned_server.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace {

using namespace lbsq;

size_t NumRounds() {
  if (const char* env = std::getenv("LBSQ_ROUNDS")) {
    const size_t v = std::strtoul(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 3;
}

struct RunResult {
  double qps = 0.0;
  double node_accesses_per_query = 0.0;
  double page_accesses_per_query = 0.0;
  double fanout_per_query = 0.0;
  double hit_rate = 0.0;
  uint64_t owner_inserts = 0;
  uint64_t boundary_inserts = 0;
  uint64_t owner_kills = 0;
  uint64_t boundary_kills = 0;
};

RunResult RunOnce(const workload::Dataset& dataset,
                  const workload::MixedWorkload& mixed, size_t fragments,
                  size_t total_buffer_frames, bool cache_on) {
  partition::PartitionedServerOptions options;
  options.fragments = fragments;
  options.buffer_capacity =
      std::max<size_t>(8, total_buffer_frames / fragments);
  partition::PartitionedServer server(dataset.entries, dataset.universe,
                                      options);
  if (cache_on) {
    cache::CacheConfig config;
    config.max_entries = 8192;
    config.max_bytes = 16u << 20;
    server.EnableCache(config);
  }

  constexpr double kHx = 0.02, kHy = 0.015;
  constexpr double kRadius = 0.025;

  const uint64_t na_before = server.router().node_accesses();
  const uint64_t pa_before = server.router().page_accesses();
  const uint64_t fq_before = server.router().fanout_queries();
  const uint64_t ff_before = server.router().fanout_fragments();
  size_t qi = 0;
  size_t wire_hits = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const workload::MixedOp& op : mixed.ops) {
    switch (op.kind) {
      case workload::MixedOp::Kind::kInsert:
        server.Insert(op.point, op.id);
        break;
      case workload::MixedOp::Kind::kDelete:
        server.Delete(op.point, op.id);
        break;
      case workload::MixedOp::Kind::kQuery: {
        const geo::Point& p = op.point;
        switch (qi++ % 5) {
          case 0:
          case 1:
            (void)server.NnQueryWireShared(p, 1).value();
            break;
          case 2:
            (void)server.NnQueryWireShared(p, 4).value();
            break;
          case 3:
            (void)server.WindowQueryWireShared(p, kHx, kHy).value();
            break;
          default:
            (void)server.RangeQueryWireShared(p, kRadius).value();
            break;
        }
        if (server.last_wire_from_cache()) ++wire_hits;
        break;
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult r;
  const auto queries = static_cast<double>(mixed.queries);
  r.qps = seconds > 0.0 ? queries / seconds : 0.0;
  r.node_accesses_per_query =
      static_cast<double>(server.router().node_accesses() - na_before) /
      queries;
  r.page_accesses_per_query =
      static_cast<double>(server.router().page_accesses() - pa_before) /
      queries;
  // Fragments visited per *routed backend primitive* (a wire query can
  // route several primitives — the kNN plus its validity-region TP
  // probes — and a cache hit routes none, so the primitive count, not
  // the client query count, is the denominator the thread-per-fragment
  // split would fan out over).
  const uint64_t routed = server.router().fanout_queries() - fq_before;
  r.fanout_per_query =
      routed == 0 ? 0.0
                  : static_cast<double>(server.router().fanout_fragments() -
                                        ff_before) /
                        static_cast<double>(routed);
  if (cache_on) {
    // Per-query hit fraction (a query that probes the owner cache and
    // then the boundary cache is still one lookup from the client's
    // point of view, so raw cache-stats lookups would dilute K > 1).
    r.hit_rate = static_cast<double>(wire_hits) / queries;
    r.owner_inserts = server.owner_cache_inserts();
    r.boundary_inserts = server.boundary_cache_inserts();
    r.owner_kills = server.owner_cache_kills();
    r.boundary_kills = server.boundary_cache_kills();
  }
  return r;
}

RunResult RunBest(const workload::Dataset& dataset,
                  const workload::MixedWorkload& mixed, size_t fragments,
                  size_t total_buffer_frames, bool cache_on, size_t rounds) {
  RunResult best;
  for (size_t i = 0; i < rounds; ++i) {
    const RunResult r =
        RunOnce(dataset, mixed, fragments, total_buffer_frames, cache_on);
    if (i == 0 || r.qps > best.qps) best = r;
  }
  return best;
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(20000);
  const size_t queries = std::max<size_t>(bench::NumQueries() * 40, 1000);
  const size_t rounds = NumRounds();
  // Deliberately smaller than the tree (about 100 pages at the default
  // scale) so the page-access column measures real buffer pressure.
  constexpr size_t kTotalBufferFrames = 64;
  const size_t fragment_counts[] = {1, 2, 4, 8};

  const workload::Dataset dataset = workload::MakeClustered(
      n, geo::Rect(0, 0, 1, 1), 12, 1.1, 0.01, 0.05, 0.1, 8101);
  const workload::MixedWorkload mixed = workload::MakeMixedWorkload(
      dataset, queries, /*updates_per_kilo_query=*/100.0, /*hotspots=*/16,
      8102, /*sigma=*/0.005);

  bench::PrintTitle("Partitioned serving: K-fragment sweep");
  std::printf(
      "dataset: %zu clustered points; %zu hotspot queries (60%% kNN / 20%% "
      "window / 20%% range) + %zu inserts / %zu deletes; %zu total buffer "
      "frames split across fragments; min time of %zu rounds\n\n",
      n, queries, mixed.inserts, mixed.deletes, kTotalBufferFrames, rounds);
  std::printf("%4s %12s %8s %8s %8s %12s %10s %14s\n", "K", "raw q/s", "NA/q",
              "PA/q", "fan-out", "cached q/s", "hit rate", "owner entries");

  std::string series;
  double hit_rate_k1 = 0.0, hit_rate_k4 = 0.0;
  for (const size_t k : fragment_counts) {
    const RunResult raw =
        RunBest(dataset, mixed, k, kTotalBufferFrames, false, rounds);
    const RunResult cached =
        RunBest(dataset, mixed, k, kTotalBufferFrames, true, rounds);
    if (k == 1) hit_rate_k1 = cached.hit_rate;
    if (k == 4) hit_rate_k4 = cached.hit_rate;

    const double owned_share =
        cached.owner_inserts + cached.boundary_inserts == 0
            ? 0.0
            : static_cast<double>(cached.owner_inserts) /
                  static_cast<double>(cached.owner_inserts +
                                      cached.boundary_inserts);
    std::printf("%4zu %12.0f %8.2f %8.2f %8.2f %12.0f %9.1f%% %13.1f%%\n", k,
                raw.qps, raw.node_accesses_per_query,
                raw.page_accesses_per_query, raw.fanout_per_query, cached.qps,
                100.0 * cached.hit_rate, 100.0 * owned_share);

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"fragments\":%zu,"
        "\"raw\":{\"qps\":%.0f,\"node_accesses_per_query\":%.3f,"
        "\"page_accesses_per_query\":%.3f,\"fanout_per_query\":%.3f},"
        "\"cached\":{\"qps\":%.0f,\"hit_rate\":%.4f,"
        "\"owner_inserts\":%llu,\"boundary_inserts\":%llu,"
        "\"owner_kills\":%llu,\"boundary_kills\":%llu}}",
        series.empty() ? "" : ",", k, raw.qps, raw.node_accesses_per_query,
        raw.page_accesses_per_query, raw.fanout_per_query, cached.qps,
        cached.hit_rate,
        static_cast<unsigned long long>(cached.owner_inserts),
        static_cast<unsigned long long>(cached.boundary_inserts),
        static_cast<unsigned long long>(cached.owner_kills),
        static_cast<unsigned long long>(cached.boundary_kills));
    series += buf;
  }

  std::printf("\nchurn hit rate: K=4 %.1f%% vs K=1 baseline %.1f%%\n",
              100.0 * hit_rate_k4, 100.0 * hit_rate_k1);

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"partition\",\"points\":%zu,\"queries\":%zu,"
                "\"updates\":%zu,\"series\":[",
                n, queries, mixed.inserts + mixed.deletes);
  const std::string artifact = std::string(json) + series + "]}";
  std::printf("\nBENCH %s\n", artifact.c_str());
  bench::WriteBenchArtifact("partition", artifact);
  return 0;
}
