// Figure 25: size of the influence set |S_inf| for k-NN queries on
// uniform data — (a) vs N with k = 1, (b) vs k with N = 100k. The paper
// measures ~6 for k = 1 (one influence object per Voronoi edge) dropping
// toward ~4 for k >= 10 (one object can contribute several edges).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/nn_validity.h"

namespace {

using namespace lbsq;

double AverageSinf(size_t n, size_t k) {
  bench::Workbench wb = bench::MakeUniformBench(n, 0.1);
  core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  double total = 0.0;
  const auto queries = bench::QueryWorkload(wb);
  for (const geo::Point& q : queries) {
    total += static_cast<double>(engine.Query(q, k).InfluenceSetSize());
  }
  return total / static_cast<double>(queries.size());
}

}  // namespace

int main() {
  bench::PrintTitle("Figure 25a: |S_inf| vs N (uniform, k=1)");
  std::printf("%8s %12s\n", "N", "|S_inf|");
  for (size_t n : {10000u, 30000u, 100000u, 300000u, 1000000u}) {
    const size_t scaled = bench::Scaled(n);
    std::printf("%8s %12.2f\n", bench::FormatCount(scaled).c_str(),
                AverageSinf(scaled, 1));
  }

  bench::PrintTitle("Figure 25b: |S_inf| vs k (uniform, N=100k)");
  std::printf("%8s %12s\n", "k", "|S_inf|");
  for (size_t k : {1u, 3u, 10u, 30u, 100u}) {
    std::printf("%8zu %12.2f\n", k, AverageSinf(bench::Scaled(100000), k));
  }
  return 0;
}
