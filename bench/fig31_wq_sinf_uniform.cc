// Figure 31: influence-set size |S_inf| of window queries on uniform
// data, split into inner and outer influence objects — (a) vs N with
// qs = 0.1% of the space, (b) vs qs with N = 100k. The paper measures
// about two inner plus two outer objects throughout.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/window_validity.h"

namespace {

using namespace lbsq;

void RunSetting(size_t n, double qs_fraction) {
  bench::Workbench wb = bench::MakeUniformBench(n, 0.1);
  core::WindowValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  const double side = std::sqrt(qs_fraction);
  double inner = 0.0;
  double outer = 0.0;
  const auto queries = bench::QueryWorkload(wb);
  for (const geo::Point& q : queries) {
    const auto result = engine.Query(q, side / 2, side / 2);
    inner += static_cast<double>(result.inner_influencers().size());
    outer += static_cast<double>(result.outer_influencers().size());
  }
  const auto count = static_cast<double>(queries.size());
  std::printf("%8s %8.2f%% %10.2f %10.2f %10.2f\n",
              bench::FormatCount(n).c_str(), 100.0 * qs_fraction,
              inner / count, outer / count, (inner + outer) / count);
}

}  // namespace

int main() {
  bench::PrintTitle("Figure 31a: window |S_inf| vs N (qs=0.1%)");
  std::printf("%8s %9s %10s %10s %10s\n", "N", "qs", "inner", "outer",
              "total");
  for (size_t n : {10000u, 30000u, 100000u, 300000u, 1000000u}) {
    RunSetting(bench::Scaled(n), 0.001);
  }

  bench::PrintTitle("Figure 31b: window |S_inf| vs qs (N=100k)");
  std::printf("%8s %9s %10s %10s %10s\n", "N", "qs", "inner", "outer",
              "total");
  for (double qs : {0.0001, 0.001, 0.01, 0.1}) {
    RunSetting(bench::Scaled(100000), qs);
  }
  return 0;
}
