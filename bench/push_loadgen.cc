// Load generator for predictive push serving (src/push): one trajectory
// client walks identical random-waypoint legs twice against a live
// loopback NetServer — once as a pull-only client that re-queries every
// time its held answer's validity region runs out, once as a subscriber
// whose next region arrives as an unsolicited kPush ahead of each
// predicted crossing. The protocol economy is what is measured, not
// wall-clock throughput (bench/net_loadgen.cc owns that):
//
//   round-trips-per-km    blocking request/response exchanges the
//                         trajectory forces, per km traveled. Pull pays
//                         one per region crossing; push pays one
//                         subscribe per leg and zero per anticipated
//                         crossing. Sync pings used to fence the
//                         virtual clock are excluded — they are an
//                         artifact of deterministic replay, not of the
//                         protocol (a wall-clock deployment has none).
//   answer-gap-at-crossing  crossings where the pushed answer was NOT
//                         already in the client's inbox when it crossed
//                         (the client would have stalled). The
//                         acceptance demands zero.
//   push hit rate         fraction of the scheduler's engine queries
//                         (subscribes + emissions) served by the
//                         semantic cache; reported for a cold pass and
//                         a warm re-run of the same legs against the
//                         retained cache.
//
// Every adopted answer is decoded and checked IsValidAt the crossing
// point (byte-identity against a pull replica is tests/push_test.cc's
// differential; re-pulling here would perturb the cache under test).
// The dataset is static — corrective/revoke paths are exercised by the
// tests, not this bench. Distances use the unit square as a 100 km x
// 100 km region, the scale of a metro-area LBS deployment; the
// pull/push ratio is scale-invariant. Knobs: LBSQ_SCALE scales the
// dataset (default 20k points).

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/server.h"
#include "core/wire_format.h"
#include "net/frame.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "push/predictor.h"
#include "push/push_scheduler.h"
#include "workload/queries.h"

namespace {

using namespace lbsq;

constexpr size_t kPoints = 20000;
constexpr size_t kLegs = 8;
constexpr size_t kMaxCrossingsPerLeg = 12;
constexpr uint32_t kNeighbors = 8;
constexpr double kSpeed = 0.25;      // universe units per trajectory second
constexpr double kPushLead = 0.05;   // trajectory seconds ahead of crossing
constexpr double kKmPerUnit = 100.0;  // unit square = 100 km x 100 km metro

struct Leg {
  geo::Point start;
  geo::Vec2 vel;
};

// Legs start at data-distributed waypoints and head toward the next one
// at constant speed; the per-leg crossing budget, not the waypoint, ends
// the leg (the waypoint model's "turn" is the next leg's re-subscribe).
std::vector<Leg> MakeLegs(const workload::Dataset& dataset, size_t count,
                          uint64_t seed) {
  const auto waypoints =
      workload::MakeRandomWaypointTrajectory(dataset, 2 * count + 2, 0.1, seed);
  std::vector<Leg> legs;
  legs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const geo::Point start = waypoints[2 * i];
    geo::Vec2 dir = waypoints[2 * i + 1] - start;
    const double norm = std::sqrt(dir.SquaredNorm());
    if (norm == 0.0) dir = geo::Vec2{1.0, 0.5};
    const double renorm = std::sqrt(dir.SquaredNorm());
    legs.push_back(Leg{start, dir * (kSpeed / renorm)});
  }
  return legs;
}

struct WalkResult {
  size_t round_trips = 0;        // blocking request/response exchanges
  size_t crossings = 0;          // region boundaries crossed
  size_t gap_crossings = 0;      // crossed without the answer in hand
  size_t validity_failures = 0;  // adopted answer invalid at the crossing
  size_t errors = 0;             // transport / protocol failures
  double distance = 0.0;         // universe units traveled to crossings
};

bool HeldAnswerValidAt(const std::vector<uint8_t>& held,
                       const geo::Point& at) {
  const auto decoded = core::wire::DecodeNnResult(held);
  return decoded.ok() && decoded->IsValidAt(at);
}

// The pull-only baseline: an initial pull per leg, then one pull at
// every crossing out of the held answer's validity region — the minimum
// a pull client can do without ever holding a stale answer.
WalkResult RunPullPhase(rtree::RTree* tree, const geo::Rect& universe,
                        const std::vector<Leg>& legs) {
  auto server = std::make_unique<core::Server>(tree, universe);
  cache::CacheConfig cache_config;
  cache_config.enabled = true;
  server->EnableCache(cache_config);
  net::NetServer serving(server.get(), net::NetOptions{});
  if (const Status listening = serving.Listen(); !listening.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", listening.ToString().c_str());
    std::exit(1);
  }
  std::thread loop([&serving] { serving.Run(); });

  WalkResult result;
  net::NetClient client;
  if (!client.Connect("127.0.0.1", serving.port()).ok()) {
    std::fprintf(stderr, "connect failed\n");
    std::exit(1);
  }
  for (const Leg& leg : legs) {
    const net::SubscribeRequest query{net::SubscribeKind::kNn, leg.start,
                                      leg.vel, kNeighbors, 0.0, 0.0, 0.0};
    auto held = client.NnQueryWire(leg.start, kNeighbors);
    if (!held.ok()) {
      ++result.errors;
      break;
    }
    ++result.round_trips;
    geo::Point pos = leg.start;
    for (size_t crossing = 0; crossing < kMaxCrossingsPerLeg; ++crossing) {
      const push::AnswerAnalysis analysis =
          push::AnalyzeAnswer(query, universe, *held, pos, leg.vel);
      if (!analysis.ok) {
        ++result.errors;
        break;
      }
      if (!analysis.prediction.has_crossing) break;
      const geo::Point at = analysis.prediction.next_query;
      result.distance += kSpeed * analysis.prediction.exit_time;
      held = client.NnQueryWire(at, kNeighbors);
      if (!held.ok()) {
        ++result.errors;
        break;
      }
      ++result.round_trips;
      ++result.crossings;
      if (!HeldAnswerValidAt(*held, at)) ++result.validity_failures;
      pos = at;
    }
  }
  client.Close();
  serving.RequestDrain();
  loop.join();
  const net::NetStats& stats = serving.stats();
  if (stats.protocol_errors + stats.bad_requests + stats.query_errors +
          stats.drops !=
      0) {
    ++result.errors;
  }
  return result;
}

struct PushPassResult {
  WalkResult walk;
  double hit_rate = 0.0;
  uint64_t pushes_sent = 0;
  bool clean = false;
};

// Drains the client's unsolicited inbox, keeping the latest answer per
// crossing point — the protocol's adoption rule (a corrective or an
// early emission for the same point supersedes; points of an abandoned
// leg linger harmlessly until the per-leg clear).
void DrainInbox(net::NetClient* client,
                std::map<std::pair<double, double>, std::vector<uint8_t>>*
                    pending,
                size_t* errors) {
  net::NetClient::Reply reply;
  while (client->TakePush(&reply)) {
    if (reply.type != net::FrameType::kPush) {
      ++*errors;  // a revoke is impossible on a static dataset
      continue;
    }
    auto envelope = net::DecodePushEnvelope(reply.payload);
    if (!envelope.ok()) {
      ++*errors;
      continue;
    }
    (*pending)[{envelope->at.x, envelope->at.y}] = std::move(envelope->answer);
  }
}

// One subscribed walk over the legs under the scheduler's virtual
// clock. Each crossing advances to just before the crossing time and
// checks the push is already in hand (the answer-gap metric), then
// advances past it so the server adopts and re-arms. Sync pings fence
// every advance: the post-wake tick runs before the ping is read, so
// after the pong every frame the tick emitted is in the inbox.
PushPassResult RunPushPass(core::Server* server, const geo::Rect& universe,
                           const std::vector<Leg>& legs) {
  push::PushConfig config;
  config.enabled = true;
  config.virtual_clock = true;
  config.push_lead = kPushLead;
  net::NetServer serving(server, net::NetOptions{});
  push::PushScheduler scheduler(server, config, serving.mutable_stats());
  scheduler.set_wake([&serving] { serving.Wake(); });
  serving.set_subscriptions(&scheduler);
  if (const Status listening = serving.Listen(); !listening.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", listening.ToString().c_str());
    std::exit(1);
  }
  std::thread loop([&serving] { serving.Run(); });

  PushPassResult result;
  WalkResult& walk = result.walk;
  net::NetClient client;
  if (!client.Connect("127.0.0.1", serving.port()).ok()) {
    std::fprintf(stderr, "connect failed\n");
    std::exit(1);
  }
  double mirror = 0.0;  // exact mirror of the scheduler's virtual clock
  for (const Leg& leg : legs) {
    std::map<std::pair<double, double>, std::vector<uint8_t>> pending;
    const net::SubscribeRequest req{net::SubscribeKind::kNn, leg.start,
                                    leg.vel, kNeighbors, 0.0, 0.0, 0.0};
    const auto subscribed = client.Subscribe(req);
    if (!subscribed.ok()) {
      ++walk.errors;
      break;
    }
    ++walk.round_trips;
    std::vector<uint8_t> held = *subscribed;
    geo::Point pos = leg.start;
    double base = mirror;  // server stamped crossing_time from this base
    for (size_t crossing = 0; crossing < kMaxCrossingsPerLeg; ++crossing) {
      const push::AnswerAnalysis analysis =
          push::AnalyzeAnswer(req, universe, held, pos, leg.vel);
      if (!analysis.ok) {
        ++walk.errors;
        break;
      }
      if (!analysis.prediction.has_crossing) break;
      const double t_cross = base + analysis.prediction.exit_time;
      const geo::Point at = analysis.prediction.next_query;
      walk.distance += kSpeed * analysis.prediction.exit_time;

      // A breath before the crossing: the push must already be here.
      const double pre = t_cross - 1e-6;
      if (pre > mirror) {
        scheduler.AdvanceVirtualTime(pre - mirror);
        mirror += pre - mirror;
      }
      if (!client.Ping().ok()) {
        ++walk.errors;
        break;
      }
      DrainInbox(&client, &pending, &walk.errors);
      const std::pair<double, double> key{at.x, at.y};
      const bool anticipated = pending.count(key) != 0;

      // Cross: the server adopts its last push and re-arms the chain.
      scheduler.AdvanceVirtualTime(t_cross + 1e-9 - mirror);
      mirror += t_cross + 1e-9 - mirror;
      if (!client.Ping().ok()) {
        ++walk.errors;
        break;
      }
      if (!anticipated) {
        ++walk.gap_crossings;
        DrainInbox(&client, &pending, &walk.errors);
      }
      const auto late = pending.find(key);
      if (late != pending.end()) {
        held = std::move(late->second);
        pending.erase(late);
      } else {
        // Never pushed at all: fall back to a pull, one round trip.
        auto pulled = client.NnQueryWire(at, kNeighbors);
        if (!pulled.ok()) {
          ++walk.errors;
          break;
        }
        held = std::move(*pulled);
        ++walk.round_trips;
      }
      ++walk.crossings;
      if (!HeldAnswerValidAt(held, at)) ++walk.validity_failures;
      pos = at;
      base = t_cross;
    }
  }
  client.Close();
  serving.RequestDrain();
  loop.join();

  // Quiescent now — the loop thread is joined.
  result.hit_rate =
      scheduler.push_queries() == 0
          ? 0.0
          : static_cast<double>(scheduler.push_cache_hits()) /
                static_cast<double>(scheduler.push_queries());
  const net::NetStats& stats = serving.stats();
  result.pushes_sent = stats.pushes_sent;
  result.clean =
      walk.errors == 0 && walk.validity_failures == 0 &&
      stats.accepts == 1 && stats.drops == 0 && stats.protocol_errors == 0 &&
      stats.bad_requests == 0 && stats.query_errors == 0 &&
      stats.subscribes_accepted == kLegs &&
      stats.subscribes_accepted ==
          stats.subscriptions_active + stats.subscriptions_replaced +
              stats.subscriptions_revoked + stats.subscriptions_closed;
  return result;
}

double TripsPerKm(const WalkResult& walk) {
  const double km = walk.distance * kKmPerUnit;
  return km > 0.0 ? static_cast<double>(walk.round_trips) / km : 0.0;
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(kPoints);
  bench::Workbench wb = bench::MakeUniformBench(n, /*buffer_fraction=*/0.0);
  const geo::Rect universe = wb.dataset.universe;
  const std::vector<Leg> legs = MakeLegs(wb.dataset, kLegs, 4243);

  bench::PrintTitle("Predictive push vs pull-only trajectories (" +
                    bench::FormatCount(n) + " points, " +
                    std::to_string(kLegs) + " legs, k=" +
                    std::to_string(kNeighbors) + ")");
  std::printf("%-12s %12s %10s %8s %10s %6s %9s\n", "client", "round-trips",
              "crossings", "km", "trips/km", "gaps", "hit rate");

  const WalkResult pull = RunPullPhase(wb.tree.get(), universe, legs);
  std::printf("%-12s %12zu %10zu %8.2f %10.3f %6s %9s\n", "pull-only",
              pull.round_trips, pull.crossings, pull.distance * kKmPerUnit,
              TripsPerKm(pull), "-", "-");

  // Cold pass, then the same legs against the retained semantic cache.
  auto server = std::make_unique<core::Server>(wb.tree.get(), universe);
  cache::CacheConfig cache_config;
  cache_config.enabled = true;
  server->EnableCache(cache_config);
  const PushPassResult cold = RunPushPass(server.get(), universe, legs);
  std::printf("%-12s %12zu %10zu %8.2f %10.3f %6zu %8.1f%%\n", "push-cold",
              cold.walk.round_trips, cold.walk.crossings,
              cold.walk.distance * kKmPerUnit, TripsPerKm(cold.walk),
              cold.walk.gap_crossings, cold.hit_rate * 100.0);
  const PushPassResult warm = RunPushPass(server.get(), universe, legs);
  std::printf("%-12s %12zu %10zu %8.2f %10.3f %6zu %8.1f%%\n", "push-warm",
              warm.walk.round_trips, warm.walk.crossings,
              warm.walk.distance * kKmPerUnit, TripsPerKm(warm.walk),
              warm.walk.gap_crossings, warm.hit_rate * 100.0);

  const double pull_per_km = TripsPerKm(pull);
  const double push_per_km = TripsPerKm(cold.walk);
  const double reduction =
      push_per_km > 0.0 ? pull_per_km / push_per_km : 0.0;
  const size_t gaps = cold.walk.gap_crossings + warm.walk.gap_crossings;
  std::printf("\npull pays %.3f round-trips/km, push pays %.3f: %.1fx fewer; "
              "%zu answer gaps across %zu crossings\n",
              pull_per_km, push_per_km, reduction,
              gaps, cold.walk.crossings + warm.walk.crossings);

  bool ok = true;
  if (pull.errors != 0 || pull.validity_failures != 0) {
    std::printf("FAIL pull-only: %zu errors, %zu validity failures\n",
                pull.errors, pull.validity_failures);
    ok = false;
  }
  for (const auto* pass : {&cold, &warm}) {
    if (!pass->clean) {
      std::printf("FAIL %s: %zu errors, %zu validity failures, unclean "
                  "server counters\n",
                  pass == &cold ? "push-cold" : "push-warm",
                  pass->walk.errors, pass->walk.validity_failures);
      ok = false;
    }
  }
  if (gaps != 0) {
    std::printf("FAIL: %zu crossings crossed without the pushed answer in "
                "hand\n",
                gaps);
    ok = false;
  }
  // The ratio floor only binds at full scale: a smoke-scaled dataset has
  // regions so large a leg exits the universe after a crossing or two.
  if (bench::Scale() >= 1.0) {
    if (cold.walk.crossings < 3 * kLegs) {
      std::printf("FAIL: only %zu crossings across %zu legs — trajectory too "
                  "short to measure\n",
                  cold.walk.crossings, kLegs);
      ok = false;
    }
    if (reduction < 5.0) {
      std::printf("FAIL: push reduces round-trips-per-km by %.1fx, below the "
                  "5x acceptance floor\n",
                  reduction);
      ok = false;
    }
  }

  char json[1536];
  std::snprintf(
      json, sizeof(json),
      "{\"name\":\"push_loadgen\",\"points\":%zu,\"legs\":%zu,"
      "\"crossings_pull\":%zu,\"crossings_push\":%zu,"
      "\"round_trips_pull\":%zu,\"round_trips_push\":%zu,"
      "\"km_pull\":%.3f,\"km_push\":%.3f,"
      "\"round_trips_per_km_pull\":%.3f,\"round_trips_per_km_push\":%.3f,"
      "\"round_trip_reduction\":%.2f,\"answer_gap_crossings\":%zu,"
      "\"push_hit_rate_cold\":%.3f,\"push_hit_rate_warm\":%.3f,"
      "\"pushes_sent\":%llu,\"verified\":%s}",
      n, kLegs, pull.crossings, cold.walk.crossings, pull.round_trips,
      cold.walk.round_trips, pull.distance * kKmPerUnit,
      cold.walk.distance * kKmPerUnit, pull_per_km, push_per_km, reduction,
      gaps, cold.hit_rate, warm.hit_rate,
      static_cast<unsigned long long>(cold.pushes_sent), ok ? "true" : "false");
  std::printf("\nBENCH %s\n", json);
  bench::WriteBenchArtifact("push", json);
  return ok ? 0 : 1;
}
