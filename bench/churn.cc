// Churn benchmark: semantic-cache effectiveness under a moving world.
// A hotspot query stream is interleaved with Poisson-arrival object
// inserts/deletes (workload::MakeMixedWorkload) at increasing update
// rates, and the same stream is served twice from identical trees: once
// with region-scoped invalidation (an update kills only the cache
// entries whose validity certificates it can touch) and once with the
// epoch-nuke fallback (any update drops the whole cache). The gap
// between the two hit-rate curves is the payoff of region scoping: the
// nuke path collapses as soon as updates are at all frequent, while
// region scoping holds its hit rate until updates saturate the hotspot
// regions themselves.
//
// Emits BENCH_churn.json with hit rate and end-to-end q/s per
// (rate, mode); min time of LBSQ_ROUNDS rounds (default 3).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cache/semantic_cache.h"
#include "core/server.h"
#include "workload/queries.h"

namespace {

using namespace lbsq;

size_t NumRounds() {
  if (const char* env = std::getenv("LBSQ_ROUNDS")) {
    const size_t v = std::strtoul(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 3;
}

struct RunResult {
  double hit_rate = 0.0;
  double qps = 0.0;
  uint64_t entries_killed = 0;
  uint64_t epoch_nukes = 0;
};

// One full pass over the mixed stream against a fresh tree; returns the
// cache hit rate and end-to-end throughput (queries / wall seconds,
// with the update cost included in the denominator — that is what a
// serving node experiences).
RunResult RunOnce(const workload::Dataset& dataset,
                  const workload::MixedWorkload& mixed, bool region_scoped) {
  bench::Workbench wb = bench::MakeBench(dataset, 0.1);
  core::Server server(wb.tree.get(), wb.dataset.universe);
  cache::CacheConfig config;
  config.max_entries = 8192;
  config.max_bytes = 16u << 20;
  config.region_scoped = region_scoped;
  server.EnableCache(config);

  constexpr double kHx = 0.02, kHy = 0.015;
  constexpr double kRadius = 0.025;

  size_t qi = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const workload::MixedOp& op : mixed.ops) {
    switch (op.kind) {
      case workload::MixedOp::Kind::kInsert:
        wb.tree->Insert(op.point, op.id);
        break;
      case workload::MixedOp::Kind::kDelete:
        wb.tree->Delete(op.point, op.id);
        break;
      case workload::MixedOp::Kind::kQuery: {
        const geo::Point& p = op.point;
        switch (qi++ % 5) {
          case 0:
          case 1:
            (void)server.NnQueryWire(p, 1).value();
            break;
          case 2:
            (void)server.NnQueryWire(p, 4).value();
            break;
          case 3:
            (void)server.WindowQueryWire(p, kHx, kHy).value();
            break;
          default:
            (void)server.RangeQueryWire(p, kRadius).value();
            break;
        }
        break;
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const cache::CacheStats stats = server.cache_stats();
  RunResult r;
  r.hit_rate = stats.lookups == 0
                   ? 0.0
                   : static_cast<double>(stats.hits) /
                         static_cast<double>(stats.lookups);
  r.qps = seconds > 0.0 ? static_cast<double>(mixed.queries) / seconds : 0.0;
  r.entries_killed = stats.entries_invalidated_by_update;
  r.epoch_nukes = stats.epoch_invalidations;
  return r;
}

RunResult RunBest(const workload::Dataset& dataset,
                  const workload::MixedWorkload& mixed, bool region_scoped,
                  size_t rounds) {
  RunResult best;
  for (size_t i = 0; i < rounds; ++i) {
    const RunResult r = RunOnce(dataset, mixed, region_scoped);
    if (i == 0 || r.qps > best.qps) {
      const double hit_rate = best.hit_rate;  // deterministic across rounds
      best = r;
      if (i > 0 && hit_rate != r.hit_rate) {
        std::fprintf(stderr, "warning: hit rate varied across rounds\n");
      }
    }
  }
  return best;
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(20000);
  const size_t queries = std::max<size_t>(bench::NumQueries() * 40, 1000);
  const size_t rounds = NumRounds();
  const double rates[] = {0.0, 10.0, 100.0, 1000.0};

  const workload::Dataset dataset = workload::MakeUnitUniform(n, 7101);

  bench::PrintTitle("Churn: cache hit rate vs update rate");
  std::printf(
      "dataset: %zu points; %zu hotspot queries per rate (60%% kNN / 20%% "
      "window / 20%% range); updates Poisson-interleaved; min time of %zu "
      "rounds\n\n",
      n, queries, rounds);
  std::printf("%22s %12s %12s %12s %12s\n", "updates/1k queries",
              "region hit", "epoch hit", "region q/s", "epoch q/s");

  std::string series;
  for (const double rate : rates) {
    const workload::MixedWorkload mixed = workload::MakeMixedWorkload(
        dataset, queries, rate, /*hotspots=*/16, 7102, /*sigma=*/0.001);
    const RunResult region = RunBest(dataset, mixed, true, rounds);
    const RunResult epoch = RunBest(dataset, mixed, false, rounds);

    std::printf("%22.0f %11.1f%% %11.1f%% %12.0f %12.0f\n", rate,
                100.0 * region.hit_rate, 100.0 * epoch.hit_rate, region.qps,
                epoch.qps);

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"updates_per_kquery\":%.0f,"
        "\"region\":{\"hit_rate\":%.4f,\"qps\":%.0f,"
        "\"entries_killed\":%llu},"
        "\"epoch\":{\"hit_rate\":%.4f,\"qps\":%.0f,\"nukes\":%llu}}",
        series.empty() ? "" : ",", rate, region.hit_rate, region.qps,
        static_cast<unsigned long long>(region.entries_killed),
        epoch.hit_rate, epoch.qps,
        static_cast<unsigned long long>(epoch.epoch_nukes));
    series += buf;
  }

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"churn\",\"points\":%zu,\"queries\":%zu,"
                "\"series\":[",
                n, queries);
  const std::string artifact = std::string(json) + series + "]}";
  std::printf("\nBENCH %s\n", artifact.c_str());
  bench::WriteBenchArtifact("churn", artifact);
  return 0;
}
