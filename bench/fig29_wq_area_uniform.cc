// Figure 29: area of the validity region of window queries on uniform
// data — (a) window size fixed at 0.1% of the space, N from 10k to 1000k;
// (b) N = 100k, window size from 0.01% to 10% of the space. Measured vs
// the Section-5 estimate (eqs. 5-3..5-5).

#include <cmath>
#include <cstdio>

#include "analysis/models.h"
#include "bench/bench_util.h"
#include "core/window_validity.h"

namespace {

using namespace lbsq;

void RunSetting(size_t n, double qs_fraction) {
  bench::Workbench wb = bench::MakeUniformBench(n, 0.1);
  core::WindowValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  const double side = std::sqrt(qs_fraction);  // square window, unit space
  double total = 0.0;
  const auto queries = bench::QueryWorkload(wb);
  for (const geo::Point& q : queries) {
    total += engine.Query(q, side / 2, side / 2).region().Area();
  }
  const double actual = total / static_cast<double>(queries.size());
  const double estimated = analysis::ExpectedWindowValidityArea(
      side, side, static_cast<double>(n));
  std::printf("%8s %8.2f%% %12.3e %12.3e\n", bench::FormatCount(n).c_str(),
              100.0 * qs_fraction, actual, estimated);
}

}  // namespace

int main() {
  bench::PrintTitle(
      "Figure 29a: area of V(q) for window queries vs N (qs=0.1%)");
  std::printf("%8s %9s %12s %12s\n", "N", "qs", "actual", "estimated");
  for (size_t n : {10000u, 30000u, 100000u, 300000u, 1000000u}) {
    RunSetting(bench::Scaled(n), 0.001);
  }

  bench::PrintTitle(
      "Figure 29b: area of V(q) for window queries vs qs (N=100k)");
  std::printf("%8s %9s %12s %12s\n", "N", "qs", "actual", "estimated");
  for (double qs : {0.0001, 0.001, 0.01, 0.1}) {
    RunSetting(bench::Scaled(100000), qs);
  }
  return 0;
}
