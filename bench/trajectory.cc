// End-to-end strategy comparison over a moving-client workload — the
// paper's headline claim quantified: validity regions cut server queries
// dramatically at modest extra per-query cost, across client speeds and
// against the [SR01] and [ZL01]-style baselines.
//
// For each client step length (speed), prints server queries, node
// accesses and page accesses per strategy over the same random-waypoint
// trajectory.

#include <cstdio>

#include "baselines/sr01.h"
#include "baselines/voronoi.h"
#include "bench/bench_util.h"
#include "core/mobile_client.h"
#include "core/server.h"

namespace {

using namespace lbsq;

struct Row {
  const char* name;
  size_t queries = 0;
  uint64_t na = 0;
  uint64_t pa = 0;
};

void Print(const Row& row, size_t updates) {
  std::printf("  %-22s %8zu %10.1f%% %12llu %10llu\n", row.name, row.queries,
              100.0 * static_cast<double>(row.queries) /
                  static_cast<double>(updates),
              static_cast<unsigned long long>(row.na),
              static_cast<unsigned long long>(row.pa));
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(100000);
  const size_t updates = 4 * bench::NumQueries();
  const workload::Dataset dataset = workload::MakeUnitUniform(n, 77);

  bench::PrintTitle(
      "Trajectory comparison: continuous 1-NN, strategies vs client speed");
  std::printf("dataset: %zu uniform points; %zu position updates\n",
              n, updates);

  // A Voronoi index over the full dataset ([ZL01]-style server); built
  // once, used for every speed.
  baselines::VoronoiIndex voronoi(dataset.entries, dataset.universe);

  for (double step : {0.0002, 0.001, 0.005}) {
    const auto trajectory =
        workload::MakeRandomWaypointTrajectory(dataset, updates, step, 13);
    std::printf("\nstep length %.4f (per update):\n", step);
    std::printf("  %-22s %8s %11s %12s %10s\n", "strategy", "queries",
                "of updates", "node acc", "page acc");

    auto with_tree = [&](auto&& body) {
      Row row = body();
      Print(row, updates);
    };

    with_tree([&] {
      bench::Workbench wb = bench::MakeBench(dataset, 0.1);
      core::Server server(wb.tree.get(), dataset.universe);
      core::MobileNnClient client(&server, 1,
                                  core::MobileNnClient::Mode::kAlwaysQuery);
      for (const geo::Point& p : trajectory) client.MoveTo(p);
      return Row{"naive re-query", client.server_queries(),
                 wb.tree->buffer().logical_accesses(),
                 wb.disk->read_count()};
    });

    for (size_t m : {4u, 16u}) {
      with_tree([&] {
        bench::Workbench wb = bench::MakeBench(dataset, 0.1);
        baselines::Sr01Client client(wb.tree.get(), 1, m);
        for (const geo::Point& p : trajectory) client.MoveTo(p);
        static char label[32];
        std::snprintf(label, sizeof(label), "sr01 (m=%zu)", m);
        return Row{label, client.server_queries(),
                   wb.tree->buffer().logical_accesses(),
                   wb.disk->read_count()};
      });
    }

    with_tree([&] {
      // [ZL01]-style: the precomputed diagram answers with the same
      // validity region; index I/O is not page-based here, so only the
      // query count is comparable.
      size_t queries = 0;
      bool has = false;
      baselines::VoronoiIndex::Result cached;
      for (const geo::Point& p : trajectory) {
        if (!has || !cached.cell.Contains(p)) {
          cached = voronoi.Query(p);
          has = true;
          ++queries;
        }
      }
      return Row{"voronoi index [ZL01]", queries, 0, 0};
    });

    with_tree([&] {
      bench::Workbench wb = bench::MakeBench(dataset, 0.1);
      core::Server server(wb.tree.get(), dataset.universe);
      core::MobileNnClient client(&server, 1);
      for (const geo::Point& p : trajectory) client.MoveTo(p);
      return Row{"validity region", client.server_queries(),
                 wb.tree->buffer().logical_accesses(),
                 wb.disk->read_count()};
    });
  }
  return 0;
}
