// Micro-benchmarks (google-benchmark): wall-clock latency of the core
// operations — plain k-NN search, TPNN, full location-based NN and window
// queries, the [SR01] client step and the Voronoi-index query. These are
// not paper figures (the paper reports I/O counts); they document the CPU
// cost of the implementation.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "baselines/sr01.h"
#include "baselines/voronoi.h"
#include "bench/bench_util.h"
#include "cache/semantic_cache.h"
#include "core/nn_validity.h"
#include "core/range_validity.h"
#include "core/window_validity.h"
#include "rtree/knn.h"
#include "tp/tpnn.h"

namespace {

using namespace lbsq;

constexpr size_t kPoints = 100000;

// Min-of-N-rounds timing: on a shared one-core box, unrelated load can
// only inflate a round, never deflate it, so the minimum over
// repetitions estimates the uncontended latency while the default mean
// is biased by interference. Applied to every benchmark below.
void MinOfRounds(benchmark::internal::Benchmark* b) {
  b->Repetitions(5)->ReportAggregatesOnly(true)->ComputeStatistics(
      "min", [](const std::vector<double>& v) {
        return *std::min_element(v.begin(), v.end());
      });
}

bench::Workbench& SharedBench() {
  static bench::Workbench wb(bench::MakeUniformBench(kPoints, 0.1));
  return wb;
}

std::vector<geo::Point>& SharedQueries() {
  static std::vector<geo::Point> queries =
      workload::MakeDataDistributedQueries(SharedBench().dataset, 1024, 5);
  return queries;
}

void BM_KnnBestFirst(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  const auto k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rtree::KnnBestFirst(*wb.tree, queries[i++ % queries.size()], k));
  }
}
BENCHMARK(BM_KnnBestFirst)->Arg(1)->Arg(10)->Arg(100)->Apply(MinOfRounds);

// Pre-NodeView baseline (materializing queue of nodes and points); the
// delta against BM_KnnBestFirst is the zero-copy + pruning win.
void BM_KnnBestFirstLegacy(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  const auto k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rtree::KnnBestFirstLegacy(*wb.tree, queries[i++ % queries.size()], k));
  }
}
BENCHMARK(BM_KnnBestFirstLegacy)->Arg(1)->Arg(10)->Arg(100)->Apply(MinOfRounds);

void BM_KnnDepthFirst(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  const auto k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rtree::KnnDepthFirst(*wb.tree, queries[i++ % queries.size()], k));
  }
}
BENCHMARK(BM_KnnDepthFirst)->Arg(1)->Arg(10)->Arg(100)->Apply(MinOfRounds);

void BM_WindowQuery(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  const double half = 1e-3 * static_cast<double>(state.range(0));
  size_t i = 0;
  std::vector<rtree::DataEntry> out;
  for (auto _ : state) {
    wb.tree->WindowQuery(
        geo::Rect::Centered(queries[i++ % queries.size()], half, half), &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_WindowQuery)->Arg(10)->Arg(50)->Arg(150)->Apply(MinOfRounds);

void BM_Tpnn(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  size_t i = 0;
  for (auto _ : state) {
    const geo::Point& q = queries[i++ % queries.size()];
    const auto nn = rtree::KnnBestFirst(*wb.tree, q, 1);
    benchmark::DoNotOptimize(tp::Tpnn(*wb.tree, q, {1.0, 0.0},
                                      nn[0].entry.point, nn[0].entry.id));
  }
}
BENCHMARK(BM_Tpnn)->Apply(MinOfRounds);

void BM_NnValidityQuery(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  const auto k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Query(queries[i++ % queries.size()], k));
  }
}
BENCHMARK(BM_NnValidityQuery)->Arg(1)->Arg(10)->Apply(MinOfRounds);

void BM_WindowValidityQuery(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  core::WindowValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Query(queries[i++ % queries.size()], 0.015, 0.015));
  }
}
BENCHMARK(BM_WindowValidityQuery)->Apply(MinOfRounds);

void BM_RangeValidityQuery(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  core::RangeValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Query(queries[i++ % queries.size()], 0.02));
  }
}
BENCHMARK(BM_RangeValidityQuery)->Apply(MinOfRounds);

// Cost of a semantic-cache hit on the wire-serving path: one grid-cell
// scan plus a handful of bisector tests plus the byte copy. Compare
// against BM_NnValidityQuery/10 — the work a hit avoids.
void BM_SemanticCacheHit(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  cache::SemanticCache sc(wb.dataset.universe, cache::CacheConfig{});
  // Seed the cache with one k=10 answer per query location; the timed
  // loop then hits the entry covering each location.
  for (const geo::Point& q : queries) {
    const core::NnValidityResult result = engine.Query(q, 10);
    std::vector<cache::BisectorConstraint> constraints;
    for (const auto& pair : result.influence_pairs()) {
      constraints.push_back({pair.displaced.point, pair.incoming.point});
    }
    std::vector<geo::Point> answers;
    for (const auto& n : result.answers()) answers.push_back(n.entry.point);
    sc.InsertNn(10, result.universe(), result.region().BoundingBox(),
                std::move(answers), std::move(constraints),
                std::vector<uint8_t>(512, 0));
  }
  std::vector<uint8_t> out;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sc.LookupNn(queries[i++ % queries.size()], 10, &out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SemanticCacheHit)->Apply(MinOfRounds);

void BM_Sr01MoveTo(benchmark::State& state) {
  auto& wb = SharedBench();
  const auto& queries = SharedQueries();
  baselines::Sr01Client client(wb.tree.get(), 1, 8);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.MoveTo(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_Sr01MoveTo)->Apply(MinOfRounds);

void BM_VoronoiIndexQuery(benchmark::State& state) {
  // Smaller dataset: the index build is O(n log n) but the point here is
  // query latency.
  static workload::Dataset dataset = workload::MakeUnitUniform(20000, 3);
  static baselines::VoronoiIndex index(dataset.entries, dataset.universe);
  const auto& queries = SharedQueries();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_VoronoiIndexQuery)->Apply(MinOfRounds);

}  // namespace

// BENCHMARK_MAIN, plus the BENCH_micro.json artifact: unless the caller
// already picked an output file, google-benchmark's own JSON reporter is
// pointed at bench::BenchArtifactPath("micro") — full name → ns/op data
// in the same place the other bench binaries drop their artifacts.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    out_flag = "--benchmark_out=" + bench::BenchArtifactPath("micro");
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
