// Figure 22: area of the validity region V(q) of k-NN queries on uniform
// data — (a) k = 1, cardinality N from 10k to 1000k; (b) N = 100k, k from
// 1 to 100. Each row prints the measured average over the query workload
// next to the Section-5 analytical estimate.

#include <cstdio>

#include "analysis/models.h"
#include "bench/bench_util.h"
#include "core/nn_validity.h"

namespace {

using namespace lbsq;

void RunSetting(size_t n, size_t k) {
  bench::Workbench wb = bench::MakeUniformBench(n, 0.1);
  core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  double total = 0.0;
  const auto queries = bench::QueryWorkload(wb);
  for (const geo::Point& q : queries) {
    total += engine.Query(q, k).region().Area();
  }
  const double actual = total / static_cast<double>(queries.size());
  const double estimated =
      analysis::ExpectedNnValidityArea(k, static_cast<double>(n));
  std::printf("%8s %6zu %12.3e %12.3e\n", bench::FormatCount(n).c_str(), k,
              actual, estimated);
}

}  // namespace

int main() {
  bench::PrintTitle("Figure 22a: area of V(q) vs N (uniform, k=1)");
  std::printf("%8s %6s %12s %12s\n", "N", "k", "actual", "estimated");
  for (size_t n : {10000u, 30000u, 100000u, 300000u, 1000000u}) {
    RunSetting(bench::Scaled(n), 1);
  }

  bench::PrintTitle("Figure 22b: area of V(q) vs k (uniform, N=100k)");
  std::printf("%8s %6s %12s %12s\n", "N", "k", "actual", "estimated");
  for (size_t k : {1u, 3u, 10u, 30u, 100u}) {
    RunSetting(bench::Scaled(100000), k);
  }
  return 0;
}
