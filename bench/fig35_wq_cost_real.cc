// Figure 35: page accesses of location-based window queries vs window
// size qs on the GR-like and NA-like datasets (10% LRU buffer), split
// between the result query and the influence-object query. The influence
// query's page faults should stay near zero except for the largest
// windows on the smaller (GR) dataset, where the buffer no longer covers
// the query neighborhood.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/window_validity.h"

namespace {

using namespace lbsq;

void RunDataset(const char* name, workload::Dataset dataset) {
  bench::Workbench wb = bench::MakeBench(std::move(dataset), 0.1);
  core::WindowValidityEngine engine(wb.tree.get(), wb.dataset.universe);
  const auto queries = bench::QueryWorkload(wb);

  bench::PrintTitle(std::string("Figure 35 (") + name +
                    "): window-query page accesses vs qs (10% LRU)");
  std::printf("%10s %12s %12s %12s %12s\n", "qs (km^2)", "PA(result)",
              "PA(inf)", "NA(result)", "NA(inf)");
  for (double qs_km2 : {100.0, 300.0, 1000.0, 3000.0, 10000.0}) {
    const double side = std::sqrt(qs_km2) * 1e3;
    double na1 = 0.0, na2 = 0.0, pa1 = 0.0, pa2 = 0.0;
    for (const geo::Point& q : queries) {
      engine.Query(q, side / 2, side / 2);
      const auto& stats = engine.stats();
      na1 += static_cast<double>(stats.result_node_accesses);
      na2 += static_cast<double>(stats.influence_node_accesses);
      pa1 += static_cast<double>(stats.result_page_accesses);
      pa2 += static_cast<double>(stats.influence_page_accesses);
    }
    const auto count = static_cast<double>(queries.size());
    std::printf("%10.0f %12.3f %12.3f %12.2f %12.2f\n", qs_km2, pa1 / count,
                pa2 / count, na1 / count, na2 / count);
  }
}

}  // namespace

int main() {
  RunDataset("GR", workload::MakeGrLike(31, bench::Scaled(23268)));
  RunDataset("NA", workload::MakeNaLike(37, bench::Scaled(569120)));
  return 0;
}
