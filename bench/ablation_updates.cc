// Ablation: update tolerance — the paper's Section 3 argument for
// computing validity regions on the fly instead of precomputing a
// Voronoi diagram [ZL01]. Under a workload that interleaves object
// updates with queries, the R-tree absorbs each update in a handful of
// page writes, while the Voronoi index must be rebuilt to stay correct.
// We charge the diagram a full rebuild per batch of updates and report
// wall-clock time for both.

#include <chrono>
#include <cstdio>

#include "baselines/voronoi.h"
#include "bench/bench_util.h"
#include "core/nn_validity.h"

namespace {

using namespace lbsq;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const size_t n = bench::Scaled(20000);
  const size_t batches = 10;
  const size_t updates_per_batch = 100;
  const size_t queries_per_batch = bench::NumQueries() / 10 + 1;

  workload::Dataset dataset = workload::MakeUnitUniform(n, 61);
  Rng rng(62);

  bench::PrintTitle(
      "Ablation: interleaved updates, on-the-fly regions vs Voronoi "
      "rebuilds");
  std::printf("dataset: %zu points, %zu batches x (%zu updates + %zu "
              "1-NN validity queries)\n\n",
              n, batches, updates_per_batch, queries_per_batch);

  // --- On-the-fly (this paper): R-tree handles updates in place. -----------
  {
    bench::Workbench wb = bench::MakeBench(dataset, 0.1);
    core::NnValidityEngine engine(wb.tree.get(), wb.dataset.universe);
    auto data = dataset.entries;
    rtree::ObjectId next_id = static_cast<rtree::ObjectId>(data.size());
    const auto start = std::chrono::steady_clock::now();
    for (size_t b = 0; b < batches; ++b) {
      for (size_t u = 0; u < updates_per_batch; ++u) {
        // Move a random object: delete + insert.
        const size_t victim = rng.NextBounded(data.size());
        wb.tree->Delete(data[victim].point, data[victim].id);
        data[victim] = {{rng.NextDouble(), rng.NextDouble()}, next_id++};
        wb.tree->Insert(data[victim].point, data[victim].id);
      }
      for (size_t qi = 0; qi < queries_per_batch; ++qi) {
        engine.Query({rng.NextDouble(), rng.NextDouble()}, 1);
      }
    }
    std::printf("%-28s %8.3f s\n", "on-the-fly (R-tree)", Seconds(start));
  }

  // --- Precomputed Voronoi [ZL01]: rebuild per batch. -----------------------
  {
    auto data = dataset.entries;
    rtree::ObjectId next_id = static_cast<rtree::ObjectId>(data.size());
    const auto start = std::chrono::steady_clock::now();
    for (size_t b = 0; b < batches; ++b) {
      for (size_t u = 0; u < updates_per_batch; ++u) {
        const size_t victim = rng.NextBounded(data.size());
        data[victim] = {{rng.NextDouble(), rng.NextDouble()}, next_id++};
      }
      // Rebuild the diagram so queries stay correct, then serve queries.
      baselines::VoronoiIndex index(data, dataset.universe);
      for (size_t qi = 0; qi < queries_per_batch; ++qi) {
        index.Query({rng.NextDouble(), rng.NextDouble()});
      }
    }
    std::printf("%-28s %8.3f s\n", "precomputed Voronoi [ZL01]",
                Seconds(start));
  }
  return 0;
}
